// The FEM-2 operating system layer (system programmer's virtual machine).
//
// Implements the paper's runtime design on the hardware simulator:
//  * a code registry ("code blocks/constants blocks") with optional
//    load-code distribution to clusters,
//  * task activation records allocated from the per-cluster variable-size
//    block heap,
//  * the seven-message protocol (message.hpp),
//  * per-cluster kernel scheduling: "one PE runs the operating system
//    kernel, which fields incoming messages and assigns available PE's to
//    process them.  Messages arriving in the input queue of any cluster can
//    be processed by any available PE",
//  * fault recovery: work running on a PE that fails is re-executed on
//    another PE (the step's effects are buffered and atomic).
//
// Task bodies are supplied by the layer above (the numerical analyst's VM,
// src/navm) as TaskProgram implementations; the OS is execution-model
// agnostic.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "hw/channel.hpp"
#include "hw/machine.hpp"
#include "sysvm/heap.hpp"
#include "sysvm/message.hpp"
#include "sysvm/observe.hpp"

namespace fem2::sysvm {

class Os;

/// Outcome of running one task step (from one resumption to the next
/// suspension point).
struct StepResult {
  enum class Outcome { Finished, Blocked, Yielded };
  Outcome outcome = Outcome::Finished;
  hw::Cycles cycles = 1;  ///< compute charged to the executing PE
};

/// A task body.  resume() runs host code up to the next suspension point;
/// all interaction with the system goes through the TaskApi handed to the
/// factory, and message sends are buffered so a step is atomic even when
/// the executing PE fails mid-step.
class TaskProgram {
 public:
  virtual ~TaskProgram() = default;

  /// `wake` carries the datum that unblocked the task (remote-return
  /// result, resume-child datum) or is empty.
  virtual StepResult resume(Payload wake) = 0;

  /// Final result; called once after resume() returned Finished.
  virtual Payload take_result() = 0;
};

/// Facade through which a TaskProgram interacts with the OS during a step.
/// Sends are buffered and applied when the step's simulated time elapses;
/// blocking intents take effect when the step ends with Outcome::Blocked.
class TaskApi {
 public:
  TaskApi(Os& os, TaskId self);

  TaskId self() const { return self_; }
  hw::ClusterId cluster() const;
  std::uint32_t replication_index() const;
  std::uint32_t replication_count() const;

  /// Accumulate compute cost for the current step.
  void charge(hw::Cycles cycles) { charged_ += cycles; }
  void charge_flops(std::uint64_t flops);
  void charge_words(std::uint64_t words);

  // --- message-sending operations (buffered) -----------------------------
  /// "initiate K replications of a task of type T".  Task ids are assigned
  /// immediately; the initiate messages travel when the step completes.
  /// `params_for(i)` builds the parameter payload of replication i.
  std::vector<TaskId> initiate(const std::string& task_type, std::uint32_t k,
                               const std::function<Payload(std::uint32_t)>&
                                   params_for);

  /// Remote procedure call to a specific cluster (the caller determined the
  /// location from the window the call operates on).  Pair with
  /// block_on_reply(token) to wait for the result.
  CallToken remote_call(hw::ClusterId destination, std::string procedure,
                        Payload args);

  /// "resume a child task", optionally carrying a datum; broadcasting to a
  /// set of paused children is a loop of these.
  void resume_child(TaskId child, Payload datum);

  // --- blocking intents ---------------------------------------------------
  // The program must suspend (return Outcome::Blocked) right after setting
  // exactly one intent per step.
  void block_on_reply(CallToken token);
  void block_on_child_terminations(std::size_t count);
  void block_on_child_pauses(std::size_t count);
  /// "pause and notify parent task"; the wake value of the next resume
  /// carries the parent's datum.
  void block_for_pause();

  // --- mailbox draining (non-blocking) -------------------------------------
  /// Results of terminated children, in arrival order; drains the box.
  std::vector<Payload> take_child_results();
  /// Children that have paused so far; drains the box.
  std::vector<TaskId> take_paused_children();

  // --- heap ----------------------------------------------------------------
  /// Allocate task-owned storage from this cluster's heap ("dynamic
  /// creation of data objects by a task").  Freed automatically when the
  /// task terminates unless freed earlier.
  std::size_t heap_allocate(std::size_t bytes);
  void heap_free(std::size_t address);

  /// Declare that this task has an external side effect the OS cannot see
  /// (e.g. a direct host-memory window write).  Clears restartability, so
  /// cluster-loss recovery escalates to a tree restart instead of silently
  /// re-running the task.
  void mark_side_effect();

  Os& os() { return os_; }

 private:
  friend class Os;

  struct WaitIntent {
    enum class Kind { None, Reply, ChildTerminations, ChildPauses, Pause };
    Kind kind = Kind::None;
    CallToken token = 0;
    std::size_t count = 0;
  };

  void begin_step();

  Os& os_;
  TaskId self_;
  hw::Cycles charged_ = 0;
  std::vector<std::pair<hw::ClusterId, Message>> outgoing_;
  WaitIntent intent_;
};

/// Registered code for a task type.
struct CodeBlock {
  std::string name;
  std::size_t code_bytes = 4096;  ///< shipped by load-code messages
  std::size_t activation_record_bytes = 256;
  std::function<std::unique_ptr<TaskProgram>(TaskApi&, Payload params)>
      factory;
};

/// Context available to a remote procedure while it executes.
struct ProcedureContext {
  Os& os;
  hw::ClusterId cluster;  ///< where the procedure runs
  hw::Cycles charged = 0;

  void charge(hw::Cycles cycles) { charged += cycles; }
  void charge_flops(std::uint64_t flops);
  void charge_words(std::uint64_t words);
};

/// Registered remote procedure: executes in a single step on any available
/// PE of the target cluster.
struct Procedure {
  std::string name;
  std::size_t activation_record_bytes = 128;
  std::function<Payload(ProcedureContext&, const Payload& args)> fn;
  /// Re-executing the procedure is observationally safe (pure reads).  A
  /// task whose only sends were idempotent calls stays restartable and can
  /// be relocated individually after a cluster loss.
  bool idempotent = false;
};

enum class TaskState { Ready, Running, Blocked, Paused, Finished };
std::string_view task_state_name(TaskState s);

enum class Placement { RoundRobin, LeastLoaded, Local };

struct OsOptions {
  Placement placement = Placement::LeastLoaded;
  /// Model load-code messages to clusters that have not seen a task type.
  bool code_loading = true;
  HeapPolicy heap_policy = HeapPolicy::FirstFit;

  // --- reliable inter-cluster transport ------------------------------------
  /// Wrap inter-cluster messages in sequenced frames with acknowledgement,
  /// timeout-driven retransmission, duplicate suppression, and in-order
  /// delivery per (source, destination) channel.  Required for correct
  /// operation on a lossy network; off by default so fault-free runs keep
  /// the seed cost model.
  bool reliable_transport = false;
  /// Base retransmission timeout; doubles per attempt (capped at 64x).
  /// 0 = derive from the machine's topology: 4x the worst-case one-way
  /// path (max launch delay + software overhead + kernel dispatch), so
  /// high-latency topologies (rotor waits, browned-out links) do not
  /// retransmit spuriously.  The default suits the flat seed network.
  hw::Cycles retransmit_timeout = 20'000;
  /// Attempts before the destination is declared unreachable
  /// (support::Error).  Covers a link severed while both ends stay alive.
  std::size_t max_retransmits = 12;
};

struct OsStats {
  std::array<std::uint64_t, kMessageTypeCount> messages_sent{};
  std::array<std::uint64_t, kMessageTypeCount> message_bytes_sent{};
  std::uint64_t tasks_initiated = 0;
  std::uint64_t tasks_finished = 0;
  std::uint64_t procedures_executed = 0;
  std::uint64_t kernel_dispatches = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t steps_redone = 0;  ///< re-executions after PE failures
  std::uint64_t ready_queue_peak = 0;

  // Reliable-transport counters.
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_dropped = 0;  ///< receiver-side seq filtering
  std::uint64_t acks_sent = 0;

  // Cluster-loss recovery counters.
  std::uint64_t clusters_lost = 0;
  std::uint64_t tasks_relocated = 0;   ///< restartable leaves re-initiated
  std::uint64_t trees_restarted = 0;   ///< root re-initiations
  std::uint64_t orphans_reaped = 0;    ///< subtree records discarded
  std::uint64_t stale_messages_dropped = 0;  ///< referenced reaped tasks

  std::uint64_t total_messages() const;
  std::uint64_t total_message_bytes() const;

  /// Exhaustive, byte-stable dump of every counter; the determinism tests
  /// diff this across host thread counts.
  std::string dump() const;
};

/// Historical name, kept for call sites that predate the fault work.
using OsMetrics = OsStats;

class Os {
 public:
  explicit Os(hw::Machine& machine, OsOptions options = {});

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- configuration -------------------------------------------------------
  void register_task_type(CodeBlock block);
  void register_procedure(Procedure procedure);
  bool has_task_type(std::string_view name) const;

  // --- boot / run -----------------------------------------------------------
  /// Inject a root task from the external environment.  The initiate
  /// message is charged as if sent from cluster `from`.
  TaskId launch(const std::string& task_type, Payload params,
                hw::ClusterId from = hw::ClusterId{0});

  /// Drive the machine until no events remain.
  void run();
  hw::Cycles now() const { return machine_.now(); }

  // --- introspection --------------------------------------------------------
  TaskState task_state(TaskId task) const;
  bool task_finished(TaskId task) const;
  /// Result of a finished task (kept until the record is observed).
  const Payload& task_result(TaskId task) const;
  hw::ClusterId task_cluster(TaskId task) const;
  std::size_t live_tasks() const;

  /// All task ids ever created (records persist for post-run inspection).
  std::vector<TaskId> task_ids() const;

  struct TaskInfo {
    TaskId id = kNoTask;
    std::string type;
    TaskId parent = kNoTask;
    hw::ClusterId cluster;
    TaskState state = TaskState::Ready;
    std::uint32_t replication_index = 0;
    std::uint32_t replication_count = 1;
  };
  TaskInfo task_info(TaskId task) const;

  /// Current ready-queue depth of a cluster.
  std::size_t ready_depth(hw::ClusterId cluster) const;

  Heap& heap(hw::ClusterId cluster);
  /// Folds per-shard counters (deterministic shard order).  Host or
  /// coordinator context only — never call from inside a parallel phase.
  const OsStats& metrics() const;
  const OsStats& stats() const { return metrics(); }

  // --- extension points for higher layers (navm) ---------------------------
  /// Reserve a call token (e.g. for synthetic wake-ups built on the
  /// remote-return path).  Tokens are striped per engine shard so parallel
  /// and serial runs allocate identical values.
  CallToken allocate_call_token();
  /// Inject a message into the machine as if sent from `from`.
  void post(hw::ClusterId from, hw::ClusterId to, Message message) {
    send(from, to, std::move(message));
  }
  hw::Machine& machine() { return machine_; }
  const hw::MachineConfig& config() const { return machine_.config(); }

  /// Installed by a higher layer; invoked for every task record discarded by
  /// cluster-loss recovery (so host-side registries — windows, collectors —
  /// can drop state owned by the reaped task).  The record still exists when
  /// the reaper runs.
  using TaskReaper = std::function<void(TaskId)>;
  void set_task_reaper(TaskReaper reaper) { task_reaper_ = std::move(reaper); }

  /// A task exists and has not finished (stale-message guard; unlike
  /// task_state this never throws).
  bool task_known(TaskId task) const;

  /// Attach an observer (not owned; analysis tooling).  Pass nullptr to
  /// detach.  At most one observer at a time.
  void set_observer(OsObserver* observer) { observer_ = observer; }

  /// Run `thunk` now in serial contexts, or buffer it (tagged with the
  /// executing event's key) for replay in exact serial order at the next
  /// window barrier when called from a parallel phase.  Observer callbacks
  /// from every layer funnel through this single sequencer so their
  /// relative order is preserved; thunks must capture their arguments by
  /// value.
  void sequenced(std::function<void()> thunk);

  // --- wait-state introspection (deadlock analysis) -------------------------
  /// Why a task is not running, exposed without touching TaskApi internals.
  struct WaitInfo {
    enum class Kind { None, Reply, ChildTerminations, ChildPauses, Pause };
    Kind kind = Kind::None;
    CallToken token = 0;      ///< for Kind::Reply
    std::size_t count = 0;    ///< for child waits: how many it asked for
    std::size_t satisfied = 0;  ///< events already banked toward `count`
  };
  WaitInfo wait_info(TaskId task) const;

  /// Remote calls whose return has not been delivered.
  struct PendingCallInfo {
    CallToken token = 0;
    TaskId caller = kNoTask;
    hw::ClusterId destination;
  };
  std::vector<PendingCallInfo> pending_call_infos() const;

  /// Reliable-transport frames sent but not yet acknowledged, per channel.
  struct ChannelBacklog {
    hw::ClusterId source;
    hw::ClusterId destination;
    std::size_t unacked = 0;
  };
  std::vector<ChannelBacklog> transport_backlog() const;

 private:
  friend class TaskApi;

  struct ProcWork {
    MsgRemoteCall call;
    hw::ClusterId from;  ///< caller's cluster (reply destination)
    // Redo support: once executed, the outcome is cached so a PE failure
    // replays the time cost without re-running host code.
    bool executed = false;
    hw::Cycles cycles = 0;
    Payload result;
  };
  using ReadyItem = std::variant<TaskId, ProcWork>;

  struct TaskRecord {
    TaskId id = kNoTask;
    std::string type;
    TaskId parent = kNoTask;
    hw::ClusterId cluster;
    std::uint32_t replication_index = 0;
    std::uint32_t replication_count = 1;
    TaskState state = TaskState::Ready;

    // Cluster-loss recovery.  saved_params lets the OS re-issue the task's
    // initiate message verbatim; restartable is cleared at the first applied
    // effect the outside world can observe (any non-idempotent send, or a
    // mark_side_effect from the layer above).  incarnation disambiguates a
    // re-initiated record from in-flight work of its predecessor.
    Payload saved_params;
    bool restartable = true;
    std::uint64_t incarnation = 0;
    /// The parent has seen this task's terminate-notify.  Lets recovery
    /// decide whether an unacknowledged terminate frame from a dead cluster
    /// must be re-sent (once) or was already delivered.
    bool terminate_delivered = false;

    std::unique_ptr<TaskApi> api;
    std::unique_ptr<TaskProgram> program;
    std::size_t ar_address = Heap::kNullAddress;
    std::size_t ar_bytes = 0;
    std::vector<std::size_t> owned_heap_blocks;

    // Wake/wait machinery.
    TaskApi::WaitIntent wait;
    Payload wake_value;
    std::map<CallToken, Payload> replies;     ///< early remote-returns
    std::vector<Payload> child_results;
    std::size_t unconsumed_child_terms = 0;
    std::vector<TaskId> paused_children;
    std::size_t unconsumed_child_pauses = 0;
    std::deque<Payload> pending_resumes;      ///< resume before pause race

    // Pending (buffered) step awaiting completion or redo.
    bool step_pending = false;
    StepResult step;
    std::vector<std::pair<hw::ClusterId, Message>> step_sends;
    Payload result;
  };

  struct ClusterState {
    std::deque<ReadyItem> ready;
    bool dispatching = false;
    std::set<std::string> loaded_code;
  };

  /// Per-engine-shard state: everything a cluster event may touch without
  /// synchronization.  Lane index == engine shard index (one lane per
  /// cluster, plus the global/host lane).  Id counters are striped
  /// (id = n * lanes + lane + 1) so serial and parallel runs allocate
  /// identical ids; stats fold deterministically in lane order.
  struct ShardLane {
    std::uint64_t next_task_id = 0;
    std::uint64_t next_call_token = 0;
    std::uint64_t next_incarnation = 0;
    std::size_t round_robin = 0;
    OsStats stats;
    /// Signed placement-load adjustments this lane has made since the last
    /// load-board refresh, indexed by cluster.
    std::vector<std::int64_t> load_delta;
    /// (cluster, task type) pairs this lane has shipped code for.
    std::set<std::pair<std::uint32_t, std::string>> shipped_code;
    /// Observer thunks buffered during a parallel phase, tagged with the
    /// emitting event's key for deterministic replay.
    std::vector<std::pair<hw::EventKey, std::function<void()>>> observations;
  };

  // --- reliable transport ----------------------------------------------------
  /// Wire envelope when reliable_transport is on.  Data frames carry one
  /// protocol message plus a channel sequence number; ack frames carry the
  /// acknowledged sequence number and no message.
  struct Frame {
    enum class Kind : std::uint8_t { Data, Ack };
    Kind kind = Kind::Data;
    std::uint32_t src = 0;  ///< channel source cluster index
    std::uint64_t seq = 0;
    Message message;
  };
  static constexpr std::size_t kFrameOverheadBytes = 16;
  static constexpr std::size_t kAckBytes = 24;

  // Protocol state and transitions live in hw/channel.hpp as a pure state
  // machine, shared with the bounded model checker (analyze/model_check);
  // the Os supplies timers, the network, and failure recovery around it.
  using SendChannel = hw::ReliableSender<Message>;
  using UnackedFrame = SendChannel::Unacked;
  using RecvChannel = hw::ReliableReceiver<Message>;
  using ChannelKey = std::pair<std::uint32_t, std::uint32_t>;  ///< (src, dst)

  /// A remote call whose return has not been seen: destination cluster and
  /// caller, so a cluster loss can identify callers it strands.
  struct PendingCall {
    TaskId caller = kNoTask;
    hw::ClusterId destination;
    std::uint64_t caller_epoch = 0;
  };

  // --- plumbing -------------------------------------------------------------
  using Packet_t = hw::Packet;

  ShardLane& lane();
  const ShardLane& lane() const;
  TaskId make_task_id();
  std::uint64_t make_incarnation();
  /// Barrier hook: replays buffered observer thunks in event-key order.
  void replay_observations();
  /// Refresh hook (window boundaries): folds every lane's load deltas into
  /// the authoritative load board.
  void refresh_load_board();
  /// Wrap an observer callback through the sequencer (no-op when no
  /// observer is attached).  `fill` must capture by value.
  void notify_observer(std::function<void(OsObserver&)> fill);

  hw::ClusterId choose_cluster(hw::ClusterId source);
  hw::ClusterId first_alive_cluster() const;
  void send(hw::ClusterId from, hw::ClusterId to, Message message);
  void transmit_frame(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq,
                      const Message& message);
  void send_ack(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq);
  void arm_retransmit(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq,
                      std::size_t attempts);
  void retransmit(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq);
  void deliver(hw::ClusterId cluster, hw::ClusterId from, Message&& message);
  void service(hw::ClusterId cluster);
  void dispatch_one(hw::ClusterId cluster);
  void decode(hw::ClusterId cluster, Packet_t&& packet);
  void assign_workers(hw::ClusterId cluster);
  void start_work(hw::PeId pe, ReadyItem item);
  void complete_task_step(hw::PeId pe, TaskId task, std::uint64_t incarnation);
  void finish_task(TaskRecord& record);
  void apply_block_intent(TaskRecord& record);
  void make_ready(TaskRecord& record, Payload wake);
  void push_ready(hw::ClusterId cluster, ReadyItem item, bool front = false);
  void on_work_lost(hw::ClusterId cluster);

  // --- cluster-loss recovery -------------------------------------------------
  void on_cluster_lost(hw::ClusterId cluster);
  /// Highest unfinished ancestor (recovery restarts whole trees from here).
  TaskId restart_root(TaskId task) const;
  bool is_restartable(const TaskRecord& rec) const;
  /// Discard a task record (heap blocks, queue entries, registries) without
  /// running it to completion.  Fires the task reaper.
  void reap_task(TaskId task);
  /// Erase `task` and send a fresh initiate with the same id from its saved
  /// parameters; placement picks a live cluster.
  void reinitiate_task(TaskId task);
  /// Re-route or drop unacked frames destined to a dead cluster.
  void flush_transport_to(hw::ClusterId cluster);
  void flush_transport_from(hw::ClusterId cluster);
  /// The task a message is addressed to, if it is task-addressed.
  static std::optional<TaskId> message_addressee(const Message& m);

  TaskRecord& record(TaskId task);
  const TaskRecord& record(TaskId task) const;
  ClusterState& cluster_state(hw::ClusterId cluster);

  // Handlers per message type.
  void handle(hw::ClusterId cluster, MsgInitiate&& m);
  void handle(hw::ClusterId cluster, MsgPauseNotify&& m);
  void handle(hw::ClusterId cluster, MsgResumeChild&& m);
  void handle(hw::ClusterId cluster, MsgTerminateNotify&& m);
  void handle(hw::ClusterId cluster, MsgRemoteCall&& m, hw::ClusterId from);
  void handle(hw::ClusterId cluster, MsgRemoteReturn&& m);
  void handle(hw::ClusterId cluster, MsgLoadCode&& m);

  hw::Machine& machine_;
  OsOptions options_;
  std::map<std::string, CodeBlock, std::less<>> code_;
  std::map<std::string, Procedure, std::less<>> procedures_;
  /// Guards the *structure* of tasks_ / task_homes_ / pending_calls_
  /// (insert, erase, find).  Record fields themselves are shard-partitioned
  /// by home cluster (std::map nodes are address-stable), so no lock is
  /// held while a record is read or written.
  mutable std::shared_mutex registry_mutex_;
  std::map<TaskId, TaskRecord> tasks_;
  /// Placement decided at id-assignment time, so messages addressed to a
  /// task (e.g. resume-child) can be routed before its initiate decodes.
  std::map<TaskId, hw::ClusterId> task_homes_;
  std::vector<ClusterState> clusters_;
  std::vector<Heap> heaps_;
  std::vector<std::optional<ReadyItem>> running_;  ///< indexed by flat PE
  std::vector<ShardLane> lanes_;  ///< one per engine shard
  /// Authoritative placement loads, refreshed only at window boundaries
  /// (identically in serial and parallel mode, so placement is
  /// thread-count invariant).
  std::vector<std::int64_t> load_board_;
  mutable OsStats metrics_;  ///< fold-on-read cache of the lane stats

  std::map<ChannelKey, SendChannel> send_channels_;
  std::map<ChannelKey, RecvChannel> recv_channels_;
  std::map<CallToken, PendingCall> pending_calls_;
  TaskReaper task_reaper_;
  OsObserver* observer_ = nullptr;
};

}  // namespace fem2::sysvm
