// "Storage management: general heap with variable size blocks" — the
// system programmer's VM storage manager, one per cluster shared memory.
//
// The heap manages a simulated address space; blocks carry simulated
// addresses (offsets) so fragmentation behaviour is modeled faithfully.
// Placement policy is pluggable (first-fit / best-fit / next-fit) — the
// bench_heap experiment ablates them under FEM-2-shaped allocation traces.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/check.hpp"

namespace fem2::sysvm {

enum class HeapPolicy { FirstFit, BestFit, NextFit };

std::string_view heap_policy_name(HeapPolicy p);

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocations = 0;
  std::size_t in_use = 0;
  std::size_t high_water = 0;
  std::uint64_t search_steps = 0;  ///< free-list nodes visited (cost proxy)

  /// External fragmentation: 1 - largest_free / total_free (0 when empty).
  double external_fragmentation = 0.0;
};

class Heap {
 public:
  Heap(std::size_t capacity, HeapPolicy policy = HeapPolicy::FirstFit,
       std::size_t alignment = 8);

  static constexpr std::size_t kNullAddress = ~std::size_t{0};

  /// Returns simulated address, or kNullAddress when no block fits.
  std::size_t allocate(std::size_t bytes);

  /// Free a block previously returned by allocate (exact address).
  void free(std::size_t address);

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return stats_.in_use; }
  std::size_t free_bytes() const { return capacity_ - stats_.in_use; }
  std::size_t largest_free_block() const;
  std::size_t block_size(std::size_t address) const;
  std::size_t live_blocks() const { return allocated_.size(); }
  std::size_t free_list_length() const { return free_.size(); }
  HeapPolicy policy() const { return policy_; }

  const HeapStats& stats() const;

  /// Invariant check used by the property tests: free + allocated blocks
  /// tile the address space exactly, with no overlap and full coalescing.
  void check_invariants() const;

 private:
  std::map<std::size_t, std::size_t>::iterator find_fit(std::size_t bytes);

  std::size_t capacity_;
  HeapPolicy policy_;
  std::size_t alignment_;
  std::map<std::size_t, std::size_t> free_;       ///< address -> size
  std::map<std::size_t, std::size_t> allocated_;  ///< address -> size
  std::size_t next_fit_cursor_ = 0;
  mutable HeapStats stats_;
};

}  // namespace fem2::sysvm
