#include "sysvm/os.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "hw/topology.hpp"

namespace fem2::sysvm {

namespace {

// Registry locks engage only while a parallel phase is executing; outside
// phases (serial mode, barriers, stop-world recovery, host calls) exactly
// one thread touches the registries and the phase barrier already orders
// the accesses, so the lock would be pure overhead.
class OptSharedLock {
 public:
  OptSharedLock(std::shared_mutex& mutex, bool engage)
      : mutex_(engage ? &mutex : nullptr) {
    if (mutex_ != nullptr) mutex_->lock_shared();
  }
  ~OptSharedLock() {
    if (mutex_ != nullptr) mutex_->unlock_shared();
  }
  OptSharedLock(const OptSharedLock&) = delete;
  OptSharedLock& operator=(const OptSharedLock&) = delete;

 private:
  std::shared_mutex* mutex_;
};

class OptUniqueLock {
 public:
  OptUniqueLock(std::shared_mutex& mutex, bool engage)
      : mutex_(engage ? &mutex : nullptr) {
    if (mutex_ != nullptr) mutex_->lock();
  }
  ~OptUniqueLock() {
    if (mutex_ != nullptr) mutex_->unlock();
  }
  OptUniqueLock(const OptUniqueLock&) = delete;
  OptUniqueLock& operator=(const OptUniqueLock&) = delete;

 private:
  std::shared_mutex* mutex_;
};

}  // namespace

// ---------------------------------------------------------------------------
// TaskApi

TaskApi::TaskApi(Os& os, TaskId self) : os_(os), self_(self) {}

hw::ClusterId TaskApi::cluster() const { return os_.record(self_).cluster; }

std::uint32_t TaskApi::replication_index() const {
  return os_.record(self_).replication_index;
}

std::uint32_t TaskApi::replication_count() const {
  return os_.record(self_).replication_count;
}

void TaskApi::charge_flops(std::uint64_t flops) {
  charged_ += flops * os_.config().cycles_per_flop;
}

void TaskApi::charge_words(std::uint64_t words) {
  charged_ += words * os_.config().cycles_per_word;
}

void TaskApi::begin_step() {
  charged_ = 0;
  outgoing_.clear();
  intent_ = WaitIntent{};
}

std::vector<TaskId> TaskApi::initiate(
    const std::string& task_type, std::uint32_t k,
    const std::function<Payload(std::uint32_t)>& params_for) {
  FEM2_CHECK_MSG(k > 0, "initiate requires at least one replication");
  FEM2_CHECK_MSG(os_.has_task_type(task_type),
                 "initiate of unregistered task type: " + task_type);
  std::vector<TaskId> ids;
  ids.reserve(k);
  const hw::ClusterId source = cluster();
  for (std::uint32_t i = 0; i < k; ++i) {
    MsgInitiate m;
    m.task_type = task_type;
    m.task = os_.make_task_id();
    m.parent = self_;
    m.replication_index = i;
    m.replication_count = k;
    m.params = params_for ? params_for(i) : Payload{};
    ids.push_back(m.task);
    const hw::ClusterId target = os_.choose_cluster(source);
    {
      OptUniqueLock lock(os_.registry_mutex_,
                         os_.machine().engine().in_worker_phase());
      os_.task_homes_.emplace(m.task, target);
    }
    outgoing_.emplace_back(target, Message{std::move(m)});
  }
  return ids;
}

CallToken TaskApi::remote_call(hw::ClusterId destination,
                               std::string procedure, Payload args) {
  MsgRemoteCall m;
  m.procedure = std::move(procedure);
  m.caller = self_;
  m.token = os_.allocate_call_token();
  m.args = std::move(args);
  const CallToken token = m.token;
  outgoing_.emplace_back(destination, Message{std::move(m)});
  return token;
}

void TaskApi::resume_child(TaskId child, Payload datum) {
  MsgResumeChild m;
  m.child = child;
  m.datum = std::move(datum);
  outgoing_.emplace_back(os_.task_cluster(child), Message{std::move(m)});
}

void TaskApi::block_on_reply(CallToken token) {
  FEM2_CHECK_MSG(intent_.kind == WaitIntent::Kind::None,
                 "one blocking intent per step");
  intent_ = {WaitIntent::Kind::Reply, token, 0};
}

void TaskApi::block_on_child_terminations(std::size_t count) {
  FEM2_CHECK_MSG(intent_.kind == WaitIntent::Kind::None,
                 "one blocking intent per step");
  intent_ = {WaitIntent::Kind::ChildTerminations, 0, count};
}

void TaskApi::block_on_child_pauses(std::size_t count) {
  FEM2_CHECK_MSG(intent_.kind == WaitIntent::Kind::None,
                 "one blocking intent per step");
  intent_ = {WaitIntent::Kind::ChildPauses, 0, count};
}

void TaskApi::block_for_pause() {
  FEM2_CHECK_MSG(intent_.kind == WaitIntent::Kind::None,
                 "one blocking intent per step");
  intent_ = {WaitIntent::Kind::Pause, 0, 0};
  auto& rec = os_.record(self_);
  if (rec.parent != kNoTask) {
    MsgPauseNotify m;
    m.child = self_;
    m.parent = rec.parent;
    outgoing_.emplace_back(os_.task_cluster(rec.parent), Message{std::move(m)});
  }
}

std::vector<Payload> TaskApi::take_child_results() {
  auto& rec = os_.record(self_);
  std::vector<Payload> out = std::move(rec.child_results);
  rec.child_results.clear();
  return out;
}

std::vector<TaskId> TaskApi::take_paused_children() {
  auto& rec = os_.record(self_);
  std::vector<TaskId> out = std::move(rec.paused_children);
  rec.paused_children.clear();
  return out;
}

std::size_t TaskApi::heap_allocate(std::size_t bytes) {
  auto& rec = os_.record(self_);
  Heap& heap = os_.heap(rec.cluster);
  const std::size_t address = heap.allocate(bytes);
  if (address == Heap::kNullAddress) {
    throw hw::OutOfMemory("task heap allocation of " + std::to_string(bytes) +
                          " bytes failed in cluster " +
                          std::to_string(rec.cluster.index));
  }
  os_.machine().allocate(rec.cluster, heap.block_size(address));
  rec.owned_heap_blocks.push_back(address);
  return address;
}

void TaskApi::heap_free(std::size_t address) {
  auto& rec = os_.record(self_);
  Heap& heap = os_.heap(rec.cluster);
  os_.machine().release(rec.cluster, heap.block_size(address));
  heap.free(address);
  std::erase(rec.owned_heap_blocks, address);
}

void TaskApi::mark_side_effect() { os_.record(self_).restartable = false; }

// ---------------------------------------------------------------------------
// ProcedureContext

void ProcedureContext::charge_flops(std::uint64_t flops) {
  charged += flops * os.config().cycles_per_flop;
}

void ProcedureContext::charge_words(std::uint64_t words) {
  charged += words * os.config().cycles_per_word;
}

// ---------------------------------------------------------------------------
// Os

std::string_view task_state_name(TaskState s) {
  switch (s) {
    case TaskState::Ready: return "ready";
    case TaskState::Running: return "running";
    case TaskState::Blocked: return "blocked";
    case TaskState::Paused: return "paused";
    case TaskState::Finished: return "finished";
  }
  FEM2_UNREACHABLE("bad TaskState");
}

std::uint64_t OsStats::total_messages() const {
  std::uint64_t total = 0;
  for (auto v : messages_sent) total += v;
  return total;
}

std::uint64_t OsStats::total_message_bytes() const {
  std::uint64_t total = 0;
  for (auto v : message_bytes_sent) total += v;
  return total;
}

std::string OsStats::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
    os << "messages_sent[" << i << "]=" << messages_sent[i] << "\n"
       << "message_bytes_sent[" << i << "]=" << message_bytes_sent[i] << "\n";
  }
  os << "tasks_initiated=" << tasks_initiated << "\n"
     << "tasks_finished=" << tasks_finished << "\n"
     << "procedures_executed=" << procedures_executed << "\n"
     << "kernel_dispatches=" << kernel_dispatches << "\n"
     << "steps_executed=" << steps_executed << "\n"
     << "steps_redone=" << steps_redone << "\n"
     << "ready_queue_peak=" << ready_queue_peak << "\n"
     << "retransmissions=" << retransmissions << "\n"
     << "duplicates_dropped=" << duplicates_dropped << "\n"
     << "acks_sent=" << acks_sent << "\n"
     << "clusters_lost=" << clusters_lost << "\n"
     << "tasks_relocated=" << tasks_relocated << "\n"
     << "trees_restarted=" << trees_restarted << "\n"
     << "orphans_reaped=" << orphans_reaped << "\n"
     << "stale_messages_dropped=" << stale_messages_dropped << "\n";
  return os.str();
}

Os::Os(hw::Machine& machine, OsOptions options)
    : machine_(machine), options_(options) {
  if (options_.retransmit_timeout == 0) {
    // Auto-derive the base RTO from the topology's worst-case one-way
    // path so slow topologies do not retransmit spuriously.
    const auto& config = machine_.config();
    options_.retransmit_timeout =
        4 * (machine_.topology().max_launch_delay() +
             config.message_sw_overhead + config.kernel_dispatch);
  }
  const std::size_t cluster_count = machine_.cluster_count();
  clusters_.resize(cluster_count);
  heaps_.reserve(cluster_count);
  for (std::size_t i = 0; i < cluster_count; ++i)
    heaps_.emplace_back(machine_.memory_capacity(), options_.heap_policy);
  running_.assign(machine_.config().total_pes(), std::nullopt);
  lanes_.resize(machine_.engine().shard_count());
  for (auto& lane : lanes_) lane.load_delta.assign(cluster_count, 0);
  load_board_.assign(cluster_count, 0);
  // The channel maps are fully populated up front so runtime lookups never
  // mutate the map structure (lookups happen concurrently across shards
  // during parallel phases; each channel's state itself is touched only by
  // its owning shard or stop-world recovery).
  for (std::uint32_t s = 0; s < cluster_count; ++s) {
    for (std::uint32_t d = 0; d < cluster_count; ++d) {
      if (s == d) continue;
      send_channels_[ChannelKey{s, d}];
      recv_channels_[ChannelKey{s, d}];
    }
  }
  machine_.set_cluster_service([this](hw::ClusterId c) { service(c); });
  machine_.set_work_lost_handler([this](hw::ClusterId c) { on_work_lost(c); });
  machine_.set_cluster_lost_handler(
      [this](hw::ClusterId c) { on_cluster_lost(c); });
  machine_.engine().add_barrier_hook([this] { replay_observations(); });
  machine_.engine().add_refresh_hook([this] { refresh_load_board(); });
}

Os::ShardLane& Os::lane() {
  return lanes_[machine_.engine().current_shard()];
}

const Os::ShardLane& Os::lane() const {
  return lanes_[machine_.engine().current_shard()];
}

TaskId Os::make_task_id() {
  const std::size_t idx = machine_.engine().current_shard();
  ShardLane& lane = lanes_[idx];
  return lane.next_task_id++ * lanes_.size() + idx + 1;
}

std::uint64_t Os::make_incarnation() {
  const std::size_t idx = machine_.engine().current_shard();
  ShardLane& lane = lanes_[idx];
  return lane.next_incarnation++ * lanes_.size() + idx + 1;
}

CallToken Os::allocate_call_token() {
  const std::size_t idx = machine_.engine().current_shard();
  ShardLane& lane = lanes_[idx];
  return lane.next_call_token++ * lanes_.size() + idx + 1;
}

void Os::sequenced(std::function<void()> thunk) {
  auto& engine = machine_.engine();
  if (!engine.in_worker_phase()) {
    thunk();
    return;
  }
  lanes_[engine.current_shard()].observations.emplace_back(
      engine.current_key(), std::move(thunk));
}

void Os::notify_observer(std::function<void(OsObserver&)> fill) {
  if (observer_ == nullptr) return;
  sequenced([obs = observer_, fill = std::move(fill)] { fill(*obs); });
}

void Os::replay_observations() {
  std::size_t total = 0;
  for (const ShardLane& lane : lanes_) total += lane.observations.size();
  if (total == 0) return;
  std::vector<std::pair<hw::EventKey, std::function<void()>>> all;
  all.reserve(total);
  for (ShardLane& lane : lanes_) {
    for (auto& entry : lane.observations) all.push_back(std::move(entry));
    lane.observations.clear();
  }
  // stable_sort keeps the append order of thunks with equal keys; all
  // thunks of one event live in one lane, so this is the emission order.
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (auto& [key, thunk] : all) thunk();
}

void Os::refresh_load_board() {
  for (ShardLane& lane : lanes_) {
    for (std::size_t i = 0; i < load_board_.size(); ++i) {
      load_board_[i] += lane.load_delta[i];
      lane.load_delta[i] = 0;
    }
  }
}

void Os::register_task_type(CodeBlock block) {
  FEM2_CHECK_MSG(block.factory != nullptr, "code block without a factory");
  FEM2_CHECK_MSG(!block.name.empty(), "code block without a name");
  const std::string name = block.name;
  const bool inserted = code_.emplace(name, std::move(block)).second;
  FEM2_CHECK_MSG(inserted, "duplicate task type: " + name);
}

void Os::register_procedure(Procedure procedure) {
  FEM2_CHECK_MSG(procedure.fn != nullptr, "procedure without a body");
  const std::string name = procedure.name;
  const bool inserted = procedures_.emplace(name, std::move(procedure)).second;
  FEM2_CHECK_MSG(inserted, "duplicate procedure: " + name);
}

bool Os::has_task_type(std::string_view name) const {
  return code_.find(name) != code_.end();
}

TaskId Os::launch(const std::string& task_type, Payload params,
                  hw::ClusterId from) {
  FEM2_CHECK_MSG(has_task_type(task_type),
                 "launch of unregistered task type: " + task_type);
  MsgInitiate m;
  m.task_type = task_type;
  m.task = make_task_id();
  m.parent = kNoTask;
  m.params = std::move(params);
  const TaskId id = m.task;
  const hw::ClusterId target = choose_cluster(from);
  {
    OptUniqueLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    task_homes_.emplace(id, target);
  }
  send(from, target, Message{std::move(m)});
  return id;
}

void Os::run() { machine_.engine().run(); }

TaskState Os::task_state(TaskId task) const { return record(task).state; }

bool Os::task_finished(TaskId task) const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  const auto it = tasks_.find(task);
  return it != tasks_.end() && it->second.state == TaskState::Finished;
}

bool Os::task_known(TaskId task) const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  const auto it = tasks_.find(task);
  return it != tasks_.end() && it->second.state != TaskState::Finished;
}

const Payload& Os::task_result(TaskId task) const {
  const auto& rec = record(task);
  FEM2_CHECK_MSG(rec.state == TaskState::Finished,
                 "task_result of an unfinished task");
  return rec.result;
}

hw::ClusterId Os::task_cluster(TaskId task) const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  const auto it = task_homes_.find(task);
  FEM2_CHECK_MSG(it != task_homes_.end(),
                 "unknown task id " + std::to_string(task));
  return it->second;
}

std::size_t Os::live_tasks() const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  std::size_t n = 0;
  for (const auto& [id, rec] : tasks_)
    if (rec.state != TaskState::Finished) ++n;
  return n;
}

std::vector<TaskId> Os::task_ids() const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  std::vector<TaskId> out;
  out.reserve(tasks_.size());
  for (const auto& [id, rec] : tasks_) out.push_back(id);
  return out;
}

Os::TaskInfo Os::task_info(TaskId task) const {
  const auto& rec = record(task);
  return {rec.id,    rec.type,
          rec.parent, rec.cluster,
          rec.state,  rec.replication_index,
          rec.replication_count};
}

Os::WaitInfo Os::wait_info(TaskId task) const {
  const auto& rec = record(task);
  WaitInfo info;
  if (rec.state != TaskState::Blocked && rec.state != TaskState::Paused)
    return info;
  using Kind = TaskApi::WaitIntent::Kind;
  switch (rec.wait.kind) {
    case Kind::None:
      break;
    case Kind::Reply:
      info.kind = WaitInfo::Kind::Reply;
      info.token = rec.wait.token;
      break;
    case Kind::ChildTerminations:
      info.kind = WaitInfo::Kind::ChildTerminations;
      info.count = rec.wait.count;
      info.satisfied = rec.unconsumed_child_terms;
      break;
    case Kind::ChildPauses:
      info.kind = WaitInfo::Kind::ChildPauses;
      info.count = rec.wait.count;
      info.satisfied = rec.unconsumed_child_pauses;
      break;
    case Kind::Pause:
      info.kind = WaitInfo::Kind::Pause;
      break;
  }
  return info;
}

std::vector<Os::PendingCallInfo> Os::pending_call_infos() const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  std::vector<PendingCallInfo> out;
  out.reserve(pending_calls_.size());
  for (const auto& [token, call] : pending_calls_)
    out.push_back({token, call.caller, call.destination});
  return out;
}

std::vector<Os::ChannelBacklog> Os::transport_backlog() const {
  std::vector<ChannelBacklog> out;
  for (const auto& [key, channel] : send_channels_) {
    if (channel.unacked.empty()) continue;
    out.push_back({hw::ClusterId{key.first}, hw::ClusterId{key.second},
                   channel.unacked.size()});
  }
  return out;
}

std::size_t Os::ready_depth(hw::ClusterId cluster) const {
  FEM2_CHECK(cluster.valid() && cluster.index < clusters_.size());
  return clusters_[cluster.index].ready.size();
}

Heap& Os::heap(hw::ClusterId cluster) {
  FEM2_CHECK(cluster.valid() && cluster.index < heaps_.size());
  return heaps_[cluster.index];
}

const OsStats& Os::metrics() const {
  metrics_ = OsStats{};
  for (const ShardLane& lane : lanes_) {
    const OsStats& s = lane.stats;
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      metrics_.messages_sent[i] += s.messages_sent[i];
      metrics_.message_bytes_sent[i] += s.message_bytes_sent[i];
    }
    metrics_.tasks_initiated += s.tasks_initiated;
    metrics_.tasks_finished += s.tasks_finished;
    metrics_.procedures_executed += s.procedures_executed;
    metrics_.kernel_dispatches += s.kernel_dispatches;
    metrics_.steps_executed += s.steps_executed;
    metrics_.steps_redone += s.steps_redone;
    metrics_.ready_queue_peak =
        std::max(metrics_.ready_queue_peak, s.ready_queue_peak);
    metrics_.retransmissions += s.retransmissions;
    metrics_.duplicates_dropped += s.duplicates_dropped;
    metrics_.acks_sent += s.acks_sent;
    metrics_.clusters_lost += s.clusters_lost;
    metrics_.tasks_relocated += s.tasks_relocated;
    metrics_.trees_restarted += s.trees_restarted;
    metrics_.orphans_reaped += s.orphans_reaped;
    metrics_.stale_messages_dropped += s.stale_messages_dropped;
  }
  return metrics_;
}

Os::TaskRecord& Os::record(TaskId task) {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  const auto it = tasks_.find(task);
  FEM2_CHECK_MSG(it != tasks_.end(),
                 "unknown task id " + std::to_string(task));
  return it->second;
}

const Os::TaskRecord& Os::record(TaskId task) const {
  OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  const auto it = tasks_.find(task);
  FEM2_CHECK_MSG(it != tasks_.end(),
                 "unknown task id " + std::to_string(task));
  return it->second;
}

Os::ClusterState& Os::cluster_state(hw::ClusterId cluster) {
  FEM2_CHECK(cluster.valid() && cluster.index < clusters_.size());
  return clusters_[cluster.index];
}

hw::ClusterId Os::choose_cluster(hw::ClusterId source) {
  // The chosen cluster's load is reserved immediately (not when the
  // initiate message travels), so a burst of initiations within one task
  // step spreads instead of piling onto the momentarily-least-loaded
  // cluster.  Loads are read from the window-stale board plus this lane's
  // own pending deltas — identical in serial and parallel mode, so
  // placement is thread-count invariant.  Every policy places on live
  // clusters only; a dead Local source falls back to least-loaded.
  ShardLane& ln = lane();
  switch (options_.placement) {
    case Placement::Local:
      if (machine_.cluster_alive(source)) {
        ln.load_delta[source.index] += 1;
        return source;
      }
      break;
    case Placement::RoundRobin: {
      for (std::size_t tries = 0; tries < clusters_.size(); ++tries) {
        const auto idx = ln.round_robin++ % clusters_.size();
        const hw::ClusterId c{static_cast<std::uint32_t>(idx)};
        if (!machine_.cluster_alive(c)) continue;
        ln.load_delta[idx] += 1;
        return c;
      }
      throw support::Error("no alive clusters for task placement");
    }
    case Placement::LeastLoaded:
      break;
  }

  std::size_t best = ~std::size_t{0};
  std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const hw::ClusterId c{static_cast<std::uint32_t>(i)};
    if (!machine_.cluster_alive(c)) continue;  // isolate failed clusters
    const std::int64_t estimate = load_board_[i] + ln.load_delta[i];
    if (estimate < best_load) {
      best_load = estimate;
      best = i;
    }
  }
  if (best == ~std::size_t{0})
    throw support::Error("no alive clusters for task placement");
  ln.load_delta[best] += 1;
  return hw::ClusterId{static_cast<std::uint32_t>(best)};
}

hw::ClusterId Os::first_alive_cluster() const {
  for (std::uint32_t c = 0; c < machine_.cluster_count(); ++c)
    if (machine_.cluster_alive(hw::ClusterId{c})) return hw::ClusterId{c};
  throw support::Error("no alive clusters");
}

void Os::send(hw::ClusterId from, hw::ClusterId to, Message message) {
  // Code distribution: an initiate to a cluster that has not loaded the
  // task type is preceded by a load-code message (FIFO channel order
  // guarantees it arrives first).  Shipping decisions are tracked per
  // lane so they need no cross-shard state; a cluster may receive the
  // same code block from two lanes, which models independent kernels
  // shipping without a global directory.
  if (options_.code_loading) {
    if (const auto* init = std::get_if<MsgInitiate>(&message)) {
      ShardLane& ln = lane();
      auto key = std::make_pair(to.index, init->task_type);
      if (!ln.shipped_code.contains(key)) {
        ln.shipped_code.insert(std::move(key));
        const auto it = code_.find(init->task_type);
        MsgLoadCode lc;
        lc.task_type = init->task_type;
        lc.code_bytes = it != code_.end() ? it->second.code_bytes : 4096;
        send(from, to, Message{std::move(lc)});
      }
    }
  }

  // Stamp remote calls with the caller's incarnation and remember where
  // they went, so cluster-loss recovery can find stranded callers and the
  // receiver can reject calls from reaped incarnations.
  if (auto* call = std::get_if<MsgRemoteCall>(&message)) {
    if (call->caller != kNoTask) {
      const bool phase = machine_.engine().in_worker_phase();
      {
        OptSharedLock lock(registry_mutex_, phase);
        const auto it = tasks_.find(call->caller);
        if (it != tasks_.end()) call->caller_epoch = it->second.incarnation;
      }
      OptUniqueLock lock(registry_mutex_, phase);
      pending_calls_[call->token] = {call->caller, to, call->caller_epoch};
    }
  }

  const auto type_idx = static_cast<std::size_t>(message_type(message));
  const std::size_t bytes = message_bytes(message);
  OsStats& stats = lane().stats;
  stats.messages_sent[type_idx] += 1;
  stats.message_bytes_sent[type_idx] += bytes;

  // Inter-cluster messages ride the reliable channel when enabled;
  // intra-cluster handoffs go through shared memory and cannot drop.
  if (options_.reliable_transport && from != to) {
    auto& channel = send_channels_.at(ChannelKey{from.index, to.index});
    const std::uint64_t seq = channel.send(std::move(message));
    transmit_frame(from, to, seq, *channel.message(seq));
    arm_retransmit(from, to, seq, 0);
    return;
  }
  machine_.send_packet(from, to, bytes, std::any(std::move(message)));
}

void Os::transmit_frame(hw::ClusterId from, hw::ClusterId to,
                        std::uint64_t seq, const Message& message) {
  Frame frame{Frame::Kind::Data, from.index, seq, message};
  machine_.send_packet(from, to, message_bytes(message) + kFrameOverheadBytes,
                       std::any(std::move(frame)));
}

void Os::send_ack(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq) {
  lane().stats.acks_sent += 1;
  Frame frame{Frame::Kind::Ack, from.index, seq, Message{MsgLoadCode{}}};
  machine_.send_packet(from, to, kAckBytes, std::any(std::move(frame)));
}

void Os::arm_retransmit(hw::ClusterId from, hw::ClusterId to,
                        std::uint64_t seq, std::size_t attempts) {
  const hw::Cycles rto =
      hw::retransmit_backoff(options_.retransmit_timeout, attempts);
  machine_.engine().schedule(rto,
                             [this, from, to, seq] { retransmit(from, to, seq); });
}

void Os::retransmit(hw::ClusterId from, hw::ClusterId to, std::uint64_t seq) {
  const auto cit = send_channels_.find(ChannelKey{from.index, to.index});
  if (cit == send_channels_.end()) return;
  if (!cit->second.message(seq)) return;  // acknowledged meanwhile
  if (!machine_.cluster_alive(to)) return;  // recovery re-routes or drops
  if (!machine_.cluster_alive(from)) return;  // channel died with its source
  switch (cit->second.on_timer(seq, options_.max_retransmits)) {
    case hw::RetransmitDecision::AlreadyAcked:
      return;
    case hw::RetransmitDecision::Exhausted:
      throw support::Error(
          "cluster " + std::to_string(to.index) +
          " unreachable from cluster " + std::to_string(from.index) +
          ": frame " + std::to_string(seq) + " unacknowledged after " +
          std::to_string(options_.max_retransmits) + " retransmits");
    case hw::RetransmitDecision::Resend:
      break;
  }
  lane().stats.retransmissions += 1;
  transmit_frame(from, to, seq, *cit->second.message(seq));
  arm_retransmit(from, to, seq, cit->second.attempts(seq));
}

void Os::service(hw::ClusterId cluster) {
  assign_workers(cluster);
  auto& state = cluster_state(cluster);
  if (state.dispatching) return;
  if (machine_.queue_depth(cluster) == 0) return;
  const hw::PeId kernel = machine_.kernel_pe(cluster);
  if (!kernel.valid()) return;  // whole cluster failed: messages stall
  if (!machine_.try_acquire_pe(kernel)) return;
  state.dispatching = true;
  lane().stats.kernel_dispatches += 1;
  machine_.occupy(kernel, machine_.config().kernel_dispatch,
                  [this, cluster, kernel] {
                    // Decode while the kernel PE is still held so a nested
                    // service() cannot double-field the same packet.
                    dispatch_one(cluster);
                    cluster_state(cluster).dispatching = false;
                    machine_.release_worker(kernel);
                    service(cluster);
                  });
}

void Os::dispatch_one(hw::ClusterId cluster) {
  auto packet = machine_.pop_packet(cluster);
  if (!packet) return;  // queue drained by someone else
  decode(cluster, std::move(*packet));
}

void Os::decode(hw::ClusterId cluster, Packet_t&& packet) {
  if (auto* frame = std::any_cast<Frame>(&packet.payload)) {
    if (frame->kind == Frame::Kind::Ack) {
      // We are the original sender: retire the acknowledged frame.
      const auto cit =
          send_channels_.find(ChannelKey{cluster.index, frame->src});
      if (cit != send_channels_.end()) cit->second.acknowledge(frame->seq);
      return;
    }

    const hw::ClusterId src{frame->src};
    auto& channel = recv_channels_.at(ChannelKey{frame->src, cluster.index});
    // Ack everything that arrives, including duplicates (the first ack may
    // have been lost) and out-of-order frames (held, but received).
    send_ack(cluster, src, frame->seq);
    auto admission = channel.admit(frame->seq, std::move(frame->message));
    if (admission.duplicate) {
      lane().stats.duplicates_dropped += 1;
      return;
    }
    for (Message& released : admission.delivered)
      deliver(cluster, src, std::move(released));
    return;
  }
  deliver(cluster, packet.source,
          std::any_cast<Message>(std::move(packet.payload)));
}

void Os::deliver(hw::ClusterId cluster, hw::ClusterId from,
                 Message&& message) {
  if (observer_ != nullptr) {
    notify_observer([cluster, m = message](OsObserver& o) {
      o.on_message(cluster, m);
    });
  }
  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MsgRemoteCall>) {
          handle(cluster, std::move(m), from);
        } else {
          handle(cluster, std::move(m));
        }
      },
      std::move(message));
}

void Os::push_ready(hw::ClusterId cluster, ReadyItem item, bool front) {
  auto& state = cluster_state(cluster);
  if (front) {
    state.ready.push_front(std::move(item));
  } else {
    state.ready.push_back(std::move(item));
  }
  OsStats& stats = lane().stats;
  stats.ready_queue_peak =
      std::max<std::uint64_t>(stats.ready_queue_peak, state.ready.size());
  assign_workers(cluster);
}

void Os::assign_workers(hw::ClusterId cluster) {
  auto& state = cluster_state(cluster);
  while (!state.ready.empty()) {
    const hw::PeId pe = machine_.acquire_worker(cluster);
    if (!pe.valid()) return;
    ReadyItem item = std::move(state.ready.front());
    state.ready.pop_front();
    start_work(pe, std::move(item));
  }
}

namespace {
std::uint64_t pe_key(const hw::MachineConfig& config, hw::PeId pe) {
  return static_cast<std::uint64_t>(pe.cluster.index) *
             config.pes_per_cluster +
         pe.index;
}
}  // namespace

void Os::start_work(hw::PeId pe, ReadyItem item) {
  const auto& config = machine_.config();

  if (auto* proc_work = std::get_if<ProcWork>(&item)) {
    // A call from a task that recovery reaped (or reaped and re-initiated
    // under the same id) is stale: executing it would act on behalf of a
    // task incarnation that no longer exists.
    if (proc_work->call.caller != kNoTask) {
      bool stale = false;
      {
        OptSharedLock lock(registry_mutex_,
                           machine_.engine().in_worker_phase());
        const auto cit = tasks_.find(proc_work->call.caller);
        stale = cit == tasks_.end() ||
                (proc_work->call.caller_epoch != 0 &&
                 cit->second.incarnation != proc_work->call.caller_epoch);
      }
      if (stale) {
        lane().stats.stale_messages_dropped += 1;
        machine_.release_worker(pe);
        return;
      }
    }
    if (!proc_work->executed) {
      const auto it = procedures_.find(proc_work->call.procedure);
      FEM2_CHECK_MSG(it != procedures_.end(),
                     "remote call to unknown procedure: " +
                         proc_work->call.procedure);
      ProcedureContext ctx{*this, pe.cluster};
      if (observer_ != nullptr) {
        notify_observer([call = proc_work->call, c = pe.cluster](
                            OsObserver& o) { o.on_procedure_begin(call, c); });
      }
      proc_work->result = it->second.fn(ctx, proc_work->call.args);
      if (observer_ != nullptr) {
        notify_observer([call = proc_work->call, c = pe.cluster](
                            OsObserver& o) { o.on_procedure_end(call, c); });
      }
      proc_work->cycles = std::max<hw::Cycles>(1, ctx.charged);
      proc_work->executed = true;
      lane().stats.procedures_executed += 1;
    } else {
      lane().stats.steps_redone += 1;
    }
    const hw::Cycles duration =
        proc_work->cycles + config.message_sw_overhead;  // format the return
    const MsgRemoteCall call = proc_work->call;
    const hw::ClusterId reply_to = proc_work->from;
    Payload result = proc_work->result;
    running_[pe_key(config, pe)] = std::move(item);
    machine_.occupy(pe, duration,
                    [this, pe, call, reply_to, result = std::move(result)] {
                      running_[pe_key(machine_.config(), pe)].reset();
                      MsgRemoteReturn ret;
                      ret.caller = call.caller;
                      ret.token = call.token;
                      ret.result = result;
                      send(pe.cluster, reply_to, Message{std::move(ret)});
                      machine_.release_worker(pe);
                    });
    return;
  }

  const TaskId task = std::get<TaskId>(item);
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    const auto tit = tasks_.find(task);
    if (tit != tasks_.end()) recp = &tit->second;
  }
  if (recp == nullptr) {
    // Reaped by cluster-loss recovery while queued.
    lane().stats.stale_messages_dropped += 1;
    machine_.release_worker(pe);
    return;
  }
  auto& rec = *recp;
  FEM2_CHECK_MSG(rec.state == TaskState::Ready,
                 "starting work on a task that is not ready");
  rec.state = TaskState::Running;

  if (!rec.step_pending) {
    rec.api->begin_step();
    Payload wake = std::move(rec.wake_value);
    rec.wake_value = Payload{};
    if (observer_ != nullptr) {
      notify_observer([task](OsObserver& o) { o.on_step_begin(task); });
    }
    rec.step = rec.program->resume(std::move(wake));
    if (observer_ != nullptr) {
      notify_observer([task](OsObserver& o) { o.on_step_end(task); });
    }
    rec.step_sends = std::move(rec.api->outgoing_);
    rec.api->outgoing_.clear();
    rec.step.cycles = std::max<hw::Cycles>(
        1, rec.api->charged_ +
               rec.step_sends.size() * config.message_sw_overhead);
    rec.step_pending = true;
    lane().stats.steps_executed += 1;
  } else {
    lane().stats.steps_redone += 1;
  }

  running_[pe_key(config, pe)] = task;
  const std::uint64_t incarnation = rec.incarnation;
  machine_.occupy(pe, rec.step.cycles, [this, pe, task, incarnation] {
    running_[pe_key(machine_.config(), pe)].reset();
    complete_task_step(pe, task, incarnation);
    machine_.release_worker(pe);
  });
}

void Os::complete_task_step(hw::PeId pe, TaskId task,
                            std::uint64_t incarnation) {
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    const auto it = tasks_.find(task);
    if (it != tasks_.end() && it->second.incarnation == incarnation)
      recp = &it->second;
  }
  if (recp == nullptr) {
    // The task was reaped (and possibly re-initiated elsewhere) while this
    // step was charging cycles; its buffered effects die unapplied.
    return;
  }
  auto& rec = *recp;
  rec.step_pending = false;

  // Applying a send is the first moment the outside world can observe this
  // task, which ends silent restartability.  Idempotent read-only calls are
  // exempt — re-running them is observationally safe.
  for (const auto& [dst, msg] : rec.step_sends) {
    const auto* call = std::get_if<MsgRemoteCall>(&msg);
    if (call != nullptr) {
      const auto pit = procedures_.find(call->procedure);
      if (pit != procedures_.end() && pit->second.idempotent) continue;
    }
    rec.restartable = false;
    break;
  }

  // Apply buffered sends.
  for (auto& [dst, msg] : rec.step_sends) {
    if (observer_ != nullptr) {
      notify_observer([id = rec.id, dst = dst, m = msg](OsObserver& o) {
        o.on_task_send(id, dst, m);
      });
    }
    send(rec.cluster, dst, std::move(msg));
  }
  rec.step_sends.clear();

  switch (rec.step.outcome) {
    case StepResult::Outcome::Finished:
      finish_task(rec);
      break;
    case StepResult::Outcome::Yielded:
      rec.state = TaskState::Ready;
      push_ready(rec.cluster, rec.id);
      break;
    case StepResult::Outcome::Blocked:
      apply_block_intent(rec);
      break;
  }
  (void)pe;
}

void Os::finish_task(TaskRecord& rec) {
  rec.state = TaskState::Finished;
  rec.result = rec.program->take_result();
  lane().stats.tasks_finished += 1;
  lane().load_delta[rec.cluster.index] -= 1;
  if (observer_ != nullptr) {
    notify_observer([id = rec.id](OsObserver& o) { o.on_task_finished(id); });
  }

  // Release the activation record and any task-owned heap blocks
  // ("data lifetime - lifetime of owner task").
  Heap& h = heap(rec.cluster);
  for (const std::size_t addr : rec.owned_heap_blocks) {
    machine_.release(rec.cluster, h.block_size(addr));
    h.free(addr);
  }
  rec.owned_heap_blocks.clear();
  if (rec.ar_address != Heap::kNullAddress) {
    machine_.release(rec.cluster, h.block_size(rec.ar_address));
    h.free(rec.ar_address);
    rec.ar_address = Heap::kNullAddress;
  }
  rec.program.reset();

  if (rec.parent != kNoTask) {
    MsgTerminateNotify m;
    m.child = rec.id;
    m.parent = rec.parent;
    m.result = rec.result;
    const hw::ClusterId dst = task_cluster(rec.parent);
    if (observer_ != nullptr) {
      notify_observer([id = rec.id, dst, m = Message{m}](OsObserver& o) {
        o.on_task_send(id, dst, m);
      });
    }
    send(rec.cluster, dst, Message{std::move(m)});
  }
}

void Os::apply_block_intent(TaskRecord& rec) {
  using Kind = TaskApi::WaitIntent::Kind;
  const auto intent = rec.api->intent_;
  rec.api->intent_ = TaskApi::WaitIntent{};

  switch (intent.kind) {
    case Kind::None:
      FEM2_UNREACHABLE("task blocked without a wait intent");
    case Kind::Reply: {
      const auto it = rec.replies.find(intent.token);
      if (it != rec.replies.end()) {
        Payload value = std::move(it->second);
        rec.replies.erase(it);
        make_ready(rec, std::move(value));
        return;
      }
      rec.state = TaskState::Blocked;
      rec.wait = intent;
      return;
    }
    case Kind::ChildTerminations: {
      if (rec.unconsumed_child_terms >= intent.count) {
        rec.unconsumed_child_terms -= intent.count;
        make_ready(rec, Payload{});
        return;
      }
      rec.state = TaskState::Blocked;
      rec.wait = intent;  // satisfied when unconsumed reaches count
      return;
    }
    case Kind::ChildPauses: {
      if (rec.unconsumed_child_pauses >= intent.count) {
        rec.unconsumed_child_pauses -= intent.count;
        make_ready(rec, Payload{});
        return;
      }
      rec.state = TaskState::Blocked;
      rec.wait = intent;
      return;
    }
    case Kind::Pause: {
      if (!rec.pending_resumes.empty()) {
        Payload datum = std::move(rec.pending_resumes.front());
        rec.pending_resumes.pop_front();
        make_ready(rec, std::move(datum));
        return;
      }
      rec.state = TaskState::Paused;
      rec.wait = intent;
      return;
    }
  }
  FEM2_UNREACHABLE("bad wait intent");
}

void Os::make_ready(TaskRecord& rec, Payload wake) {
  rec.state = TaskState::Ready;
  rec.wait = TaskApi::WaitIntent{};
  rec.wake_value = std::move(wake);
  push_ready(rec.cluster, rec.id);
}

void Os::on_work_lost(hw::ClusterId cluster) {
  // Requeue every work item whose PE is no longer alive, at the front so
  // recovery happens promptly.  Only this cluster's slots are scanned —
  // the handler runs on the cluster's own shard (or stop-world), so other
  // clusters' slots must not be touched.
  const auto& config = machine_.config();
  const std::uint64_t base =
      static_cast<std::uint64_t>(cluster.index) * config.pes_per_cluster;
  for (std::uint32_t p = 0; p < config.pes_per_cluster; ++p) {
    auto& slot = running_[base + p];
    if (!slot.has_value()) continue;
    const hw::PeId pe{cluster, p};
    if (machine_.pe_alive(pe)) continue;
    ReadyItem item = std::move(*slot);
    slot.reset();
    if (const auto* task = std::get_if<TaskId>(&item)) {
      TaskRecord* recp = nullptr;
      {
        OptSharedLock lock(registry_mutex_,
                           machine_.engine().in_worker_phase());
        const auto it = tasks_.find(*task);
        if (it != tasks_.end()) recp = &it->second;
      }
      if (recp == nullptr) continue;  // reaped mid-step: drop the redo
      recp->state = TaskState::Ready;
    }
    push_ready(cluster, std::move(item), /*front=*/true);
  }
}

// ---------------------------------------------------------------------------
// Cluster-loss recovery
//
// Cluster loss always runs stop-world (fault events live on the global
// shard), so these functions never race a parallel phase; the registry
// locks they take through the shared helpers are disengaged no-ops.

std::optional<TaskId> Os::message_addressee(const Message& m) {
  return std::visit(
      [](const auto& v) -> std::optional<TaskId> {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, MsgInitiate>) return v.task;
        if constexpr (std::is_same_v<T, MsgPauseNotify>) return v.parent;
        if constexpr (std::is_same_v<T, MsgResumeChild>) return v.child;
        if constexpr (std::is_same_v<T, MsgTerminateNotify>) return v.parent;
        if constexpr (std::is_same_v<T, MsgRemoteReturn>) return v.caller;
        // Remote calls and code loads are cluster-addressed.
        return std::nullopt;
      },
      m);
}

bool Os::is_restartable(const TaskRecord& rec) const {
  // A task can be silently re-run from its initiate parameters only if the
  // outside world has neither seen it act nor handed it state it would
  // lose: no applied non-idempotent sends, and an empty mailbox.
  return rec.restartable && rec.state != TaskState::Finished &&
         rec.replies.empty() && rec.child_results.empty() &&
         rec.paused_children.empty() && rec.pending_resumes.empty() &&
         rec.unconsumed_child_terms == 0 && rec.unconsumed_child_pauses == 0;
}

TaskId Os::restart_root(TaskId task) const {
  // Highest unfinished ancestor: restarting there regenerates every
  // protocol interaction the victim's loss invalidated.
  TaskId current = task;
  while (true) {
    const auto it = tasks_.find(current);
    if (it == tasks_.end()) return current;
    const TaskId parent = it->second.parent;
    if (parent == kNoTask) return current;
    const auto pit = tasks_.find(parent);
    if (pit == tasks_.end() || pit->second.state == TaskState::Finished)
      return current;
    current = parent;
  }
}

void Os::reap_task(TaskId task) {
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    const auto it = tasks_.find(task);
    if (it != tasks_.end()) recp = &it->second;
  }
  if (recp == nullptr) return;
  TaskRecord& rec = *recp;
  if (task_reaper_) task_reaper_(task);

  if (machine_.cluster_alive(rec.cluster)) {
    Heap& h = heaps_[rec.cluster.index];
    for (const std::size_t addr : rec.owned_heap_blocks) {
      machine_.release(rec.cluster, h.block_size(addr));
      h.free(addr);
    }
    if (rec.ar_address != Heap::kNullAddress) {
      machine_.release(rec.cluster, h.block_size(rec.ar_address));
      h.free(rec.ar_address);
    }
    auto& state = cluster_state(rec.cluster);
    if (rec.state != TaskState::Finished)
      lane().load_delta[rec.cluster.index] -= 1;
    std::erase_if(state.ready, [&](const ReadyItem& item) {
      const auto* queued = std::get_if<TaskId>(&item);
      return queued != nullptr && *queued == task;
    });
  }
  OptUniqueLock lock(registry_mutex_, machine_.engine().in_worker_phase());
  task_homes_.erase(task);
  tasks_.erase(task);
}

void Os::reinitiate_task(TaskId task) {
  lane().stats.tasks_relocated += 1;
  MsgInitiate m;
  TaskId parent = kNoTask;
  {
    const auto it = tasks_.find(task);
    FEM2_CHECK_MSG(it != tasks_.end(), "re-initiating an unknown task");
    const TaskRecord& rec = it->second;
    m.task_type = rec.type;
    m.task = rec.id;
    m.parent = rec.parent;
    m.replication_index = rec.replication_index;
    m.replication_count = rec.replication_count;
    m.params = rec.saved_params;
    parent = rec.parent;
  }

  reap_task(task);

  // The re-initiate models recovery traffic from the coordinating cluster:
  // the parent's home when it is alive, otherwise any survivor.
  hw::ClusterId source = hw::ClusterId{};
  if (parent != kNoTask) {
    const auto pit = tasks_.find(parent);
    if (pit != tasks_.end() && machine_.cluster_alive(pit->second.cluster))
      source = pit->second.cluster;
  }
  if (!source.valid()) source = first_alive_cluster();

  const hw::ClusterId target = choose_cluster(source);
  task_homes_.emplace(m.task, target);
  send(source, target, Message{std::move(m)});
}

void Os::flush_transport_to(hw::ClusterId cluster) {
  for (auto& [key, channel] : send_channels_) {
    if (key.second != cluster.index || channel.unacked.empty()) continue;
    std::map<std::uint64_t, UnackedFrame> unacked = std::move(channel.unacked);
    channel.unacked.clear();
    const hw::ClusterId source{key.first};
    for (auto& [seq, frame] : unacked) {
      if (auto* init = std::get_if<MsgInitiate>(&frame.message)) {
        // The task never came to exist; re-route its initiate to a live
        // cluster (unless its parent was reaped meanwhile).
        if (init->parent != kNoTask && !tasks_.contains(init->parent)) {
          lane().stats.stale_messages_dropped += 1;
          task_homes_.erase(init->task);
          continue;
        }
        const hw::ClusterId target = choose_cluster(source);
        task_homes_[init->task] = target;
        lane().stats.tasks_relocated += 1;
        send(source, target, std::move(frame.message));
        continue;
      }
      const auto addressee = message_addressee(frame.message);
      const auto home =
          addressee ? task_homes_.find(*addressee) : task_homes_.end();
      if (!addressee || home == task_homes_.end() ||
          !tasks_.contains(*addressee) ||
          !machine_.cluster_alive(home->second)) {
        lane().stats.stale_messages_dropped += 1;
        continue;
      }
      // Follow the addressee to its new home on a fresh channel sequence.
      send(source, home->second, std::move(frame.message));
    }
  }
}

void Os::flush_transport_from(hw::ClusterId cluster) {
  // The dead cluster's send channels: each unacknowledged frame either never
  // arrived, or arrived and only its ack was lost.  Retire the channel state
  // (silencing its retransmit timers) and salvage what still matters.
  for (auto& [key, channel] : send_channels_) {
    if (key.first != cluster.index || channel.unacked.empty()) continue;
    std::map<std::uint64_t, UnackedFrame> unacked = std::move(channel.unacked);
    channel.unacked.clear();
    for (auto& [seq, frame] : unacked) {
      if (auto* init = std::get_if<MsgInitiate>(&frame.message)) {
        if (tasks_.contains(init->task)) continue;  // delivered; ack was lost
        if (init->parent != kNoTask && !tasks_.contains(init->parent)) {
          // Parent reaped (or itself mid-reinitiate): the restarted tree
          // re-creates its own children.
          lane().stats.stale_messages_dropped += 1;
          task_homes_.erase(init->task);
          continue;
        }
        const hw::ClusterId source = first_alive_cluster();
        const hw::ClusterId target = choose_cluster(source);
        task_homes_[init->task] = target;
        lane().stats.tasks_relocated += 1;
        send(source, target, std::move(frame.message));
        continue;
      }
      if (auto* term = std::get_if<MsgTerminateNotify>(&frame.message)) {
        // A child that finished on the dead cluster before it died: its
        // result survives in the task table, so the notification can be
        // re-sent from a live source — but only if it was never delivered
        // and the parent is still around to consume it.
        const auto child = tasks_.find(term->child);
        const auto home = task_homes_.find(term->parent);
        if (child != tasks_.end() && !child->second.terminate_delivered &&
            tasks_.contains(term->parent) && home != task_homes_.end() &&
            machine_.cluster_alive(home->second)) {
          send(first_alive_cluster(), home->second, std::move(frame.message));
          continue;
        }
      }
      // Everything else is covered by task-level recovery: an undelivered
      // pause/resume involves a task that lived on the dead cluster (already
      // a victim), and a lost remote return leaves its pending call intact,
      // making the caller a victim.
      lane().stats.stale_messages_dropped += 1;
    }
  }
}

void Os::on_cluster_lost(hw::ClusterId cluster) {
  lane().stats.clusters_lost += 1;

  // The cluster's kernel state dies with the hardware: queued work, the
  // dispatch latch, its code registry, and the heap's contents.  The load
  // it carried vanishes from the placement board, as do every lane's
  // pending deltas and code-shipping memory for it.
  auto& state = cluster_state(cluster);
  state.ready.clear();
  state.dispatching = false;
  state.loaded_code.clear();
  load_board_[cluster.index] = 0;
  for (auto& ln : lanes_) {
    ln.load_delta[cluster.index] = 0;
    std::erase_if(ln.shipped_code, [&](const auto& entry) {
      return entry.first == cluster.index;
    });
  }
  heaps_[cluster.index] = Heap(machine_.memory_capacity(),
                               options_.heap_policy);

  // Held (out-of-order) frames lived in the dead cluster's memory; the
  // channel sequence state is NIC-resident and survives.
  for (auto& [key, channel] : recv_channels_)
    if (key.second == cluster.index) channel.held.clear();

  // Frames from the dead cluster held for reordering at live receivers have
  // already physically arrived (and been acknowledged); the sequence gaps
  // below them can never fill now.  Deliver them in order before recovery
  // decides who is a victim, so their effects (task records, delivered
  // terminations, retired calls) are visible to the victim computation.
  for (auto& [key, channel] : recv_channels_) {
    if (key.first != cluster.index || channel.held.empty()) continue;
    const hw::ClusterId dst{key.second};
    if (!machine_.cluster_alive(dst)) continue;
    std::map<std::uint64_t, Message> held = std::move(channel.held);
    channel.held.clear();
    for (auto& [seq, message] : held) {
      channel.next_expected = seq + 1;
      deliver(dst, cluster, std::move(message));
    }
  }

  // Victims: unfinished tasks homed here, plus callers stranded mid remote
  // call into here (their reply will never come).
  std::set<TaskId> victims;
  for (const auto& [id, rec] : tasks_)
    if (rec.cluster == cluster && rec.state != TaskState::Finished)
      victims.insert(id);
  for (const auto& [token, call] : pending_calls_) {
    if (call.destination != cluster) continue;
    const auto it = tasks_.find(call.caller);
    if (it != tasks_.end() && it->second.state != TaskState::Finished &&
        it->second.incarnation == call.caller_epoch)
      victims.insert(call.caller);
  }

  if (machine_.alive_clusters() == 0) {
    // In-flight work counts as live too: an earlier kill in the same event
    // may have re-initiated tasks whose initiate messages are still on the
    // wire, so tasks_ alone under-counts.  A placement reservation without a
    // task record is exactly an initiate that has not landed yet (framed or
    // not), and unacknowledged frames cover everything else.
    std::size_t in_flight = 0;
    for (const auto& [id, home] : task_homes_)
      if (!tasks_.contains(id)) in_flight += 1;
    for (const auto& [key, channel] : send_channels_)
      in_flight += channel.unacked.size();
    if (live_tasks() > 0 || in_flight > 0) {
      throw support::Error("all clusters failed with " +
                           std::to_string(live_tasks()) +
                           " unfinished tasks and " +
                           std::to_string(in_flight) +
                           " undelivered messages; the computation is "
                           "unrecoverable");
    }
    return;
  }

  // Partition into individually-relocatable leaves and tree restarts.
  std::set<TaskId> roots;
  std::vector<TaskId> leaves;
  for (const TaskId id : victims) {
    const auto it = tasks_.find(id);
    if (it == tasks_.end()) continue;
    const auto& rec = it->second;
    if (rec.cluster == cluster && is_restartable(rec)) {
      leaves.push_back(id);
    } else {
      roots.insert(restart_root(id));
    }
  }

  // Tree restarts: reap the whole subtree, then re-initiate the root under
  // its original id, so an external waiter on task_result(root) never
  // notices beyond the elapsed time.
  for (const TaskId root : roots) {
    if (!tasks_.contains(root)) continue;
    std::vector<TaskId> subtree{root};
    for (std::size_t i = 0; i < subtree.size(); ++i) {
      for (const auto& [id, rec] : tasks_)
        if (rec.parent == subtree[i]) subtree.push_back(id);
    }
    for (std::size_t i = subtree.size(); i > 1; --i) reap_task(subtree[i - 1]);
    lane().stats.orphans_reaped += subtree.size() - 1;
    reinitiate_task(root);
    lane().stats.trees_restarted += 1;
  }

  // Restartable leaves untouched by a tree restart relocate individually.
  for (const TaskId id : leaves) {
    if (!tasks_.contains(id)) continue;
    reinitiate_task(id);
  }

  // Retire stranded call bookkeeping: calls into the dead cluster, and
  // calls whose caller incarnation no longer exists.
  std::erase_if(pending_calls_, [&](const auto& entry) {
    if (entry.second.destination == cluster) return true;
    const auto it = tasks_.find(entry.second.caller);
    return it == tasks_.end() ||
           it->second.incarnation != entry.second.caller_epoch;
  });

  // Unacknowledged frames to the dead cluster follow their addressee's new
  // home or are dropped as stale, and frames the dead cluster itself had in
  // flight are re-sent from a live source or retired.
  flush_transport_to(cluster);
  flush_transport_from(cluster);
}

// ---------------------------------------------------------------------------
// Message handlers (run at kernel decode time)

void Os::handle(hw::ClusterId cluster, MsgInitiate&& m) {
  const bool phase = machine_.engine().in_worker_phase();
  if (m.parent != kNoTask) {
    bool orphan = false;
    {
      OptSharedLock lock(registry_mutex_, phase);
      orphan = !tasks_.contains(m.parent);
    }
    if (orphan) {
      // Orphan initiate: the parent's subtree was reaped by cluster-loss
      // recovery while this message was in flight.  The restarted tree
      // re-creates its own children, so this one must not run.  Undo the
      // placement reservation made at send time.
      lane().stats.stale_messages_dropped += 1;
      {
        OptUniqueLock lock(registry_mutex_, phase);
        task_homes_.erase(m.task);
      }
      lane().load_delta[cluster.index] -= 1;
      return;
    }
  }
  {
    bool duplicate = false;
    {
      OptSharedLock lock(registry_mutex_, phase);
      duplicate = tasks_.contains(m.task);
    }
    if (duplicate) {
      // Duplicate initiate (the task already exists here or was re-homed).
      lane().stats.stale_messages_dropped += 1;
      return;
    }
  }
  const auto it = code_.find(m.task_type);
  FEM2_CHECK_MSG(it != code_.end(),
                 "initiate of unknown task type: " + m.task_type);
  const CodeBlock& block = it->second;

  // "an initiate task message may require the following steps: find code
  // for task, allocate an activation record, copy parameters from the
  // message queue into activation record, enter task in ready queue".
  TaskRecord rec;
  rec.id = m.task;
  rec.type = m.task_type;
  rec.parent = m.parent;
  rec.cluster = cluster;
  rec.replication_index = m.replication_index;
  rec.replication_count = m.replication_count;

  Heap& h = heap(cluster);
  const std::size_t ar_bytes =
      block.activation_record_bytes + m.params.bytes;
  const std::size_t address = h.allocate(std::max<std::size_t>(ar_bytes, 8));
  if (address == Heap::kNullAddress) {
    throw hw::OutOfMemory("activation record allocation failed in cluster " +
                          std::to_string(cluster.index));
  }
  machine_.allocate(cluster, h.block_size(address));
  rec.ar_address = address;
  rec.ar_bytes = ar_bytes;

  rec.saved_params = m.params;  // kept for re-initiation after cluster loss
  rec.incarnation = make_incarnation();
  rec.api = std::make_unique<TaskApi>(*this, rec.id);
  rec.program = block.factory(*rec.api, std::move(m.params));
  FEM2_CHECK_MSG(rec.program != nullptr, "task factory returned null");
  rec.state = TaskState::Ready;

  const TaskId id = rec.id;
  const TaskId parent = rec.parent;
  {
    OptUniqueLock lock(registry_mutex_, phase);
    tasks_.emplace(id, std::move(rec));
  }
  lane().stats.tasks_initiated += 1;
  if (observer_ != nullptr) {
    notify_observer(
        [id, parent](OsObserver& o) { o.on_task_created(id, parent); });
  }
  push_ready(cluster, id);
}

void Os::handle(hw::ClusterId cluster, MsgPauseNotify&& m) {
  (void)cluster;
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    const auto it = tasks_.find(m.parent);
    if (it != tasks_.end()) recp = &it->second;
  }
  if (recp == nullptr) {
    lane().stats.stale_messages_dropped += 1;
    return;
  }
  auto& parent = *recp;
  parent.paused_children.push_back(m.child);
  parent.unconsumed_child_pauses += 1;
  if (parent.state == TaskState::Blocked &&
      parent.wait.kind == TaskApi::WaitIntent::Kind::ChildPauses &&
      parent.unconsumed_child_pauses >= parent.wait.count) {
    parent.unconsumed_child_pauses -= parent.wait.count;
    make_ready(parent, Payload{});
  }
}

void Os::handle(hw::ClusterId cluster, MsgResumeChild&& m) {
  (void)cluster;
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    const auto it = tasks_.find(m.child);
    if (it != tasks_.end()) recp = &it->second;
  }
  if (recp == nullptr) {
    lane().stats.stale_messages_dropped += 1;
    return;
  }
  auto& child = *recp;
  // Delivering a datum is external state the child cannot silently replay.
  child.restartable = false;
  if (child.state == TaskState::Paused) {
    make_ready(child, std::move(m.datum));
  } else {
    // Resume raced ahead of the child's pause; deliver on next pause.
    child.pending_resumes.push_back(std::move(m.datum));
  }
}

void Os::handle(hw::ClusterId cluster, MsgTerminateNotify&& m) {
  (void)cluster;
  TaskRecord* childp = nullptr;
  TaskRecord* parentp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, machine_.engine().in_worker_phase());
    if (const auto cit = tasks_.find(m.child); cit != tasks_.end())
      childp = &cit->second;
    if (const auto it = tasks_.find(m.parent); it != tasks_.end())
      parentp = &it->second;
  }
  if (childp != nullptr) childp->terminate_delivered = true;
  if (parentp == nullptr) {
    lane().stats.stale_messages_dropped += 1;
    return;
  }
  auto& parent = *parentp;
  parent.child_results.push_back(std::move(m.result));
  parent.unconsumed_child_terms += 1;
  if (parent.state == TaskState::Blocked &&
      parent.wait.kind == TaskApi::WaitIntent::Kind::ChildTerminations &&
      parent.unconsumed_child_terms >= parent.wait.count) {
    parent.unconsumed_child_terms -= parent.wait.count;
    make_ready(parent, Payload{});
  }
}

void Os::handle(hw::ClusterId cluster, MsgRemoteCall&& m, hw::ClusterId from) {
  ProcWork work;
  work.call = std::move(m);
  work.from = from;
  push_ready(cluster, std::move(work));
}

void Os::handle(hw::ClusterId cluster, MsgRemoteReturn&& m) {
  (void)cluster;
  const bool phase = machine_.engine().in_worker_phase();
  {
    OptUniqueLock lock(registry_mutex_, phase);
    pending_calls_.erase(m.token);
  }
  TaskRecord* recp = nullptr;
  {
    OptSharedLock lock(registry_mutex_, phase);
    const auto it = tasks_.find(m.caller);
    if (it != tasks_.end()) recp = &it->second;
  }
  if (recp == nullptr) {
    lane().stats.stale_messages_dropped += 1;
    return;
  }
  auto& caller = *recp;
  if (caller.state == TaskState::Blocked &&
      caller.wait.kind == TaskApi::WaitIntent::Kind::Reply &&
      caller.wait.token == m.token) {
    make_ready(caller, std::move(m.result));
  } else {
    caller.replies.emplace(m.token, std::move(m.result));
  }
}

void Os::handle(hw::ClusterId cluster, MsgLoadCode&& m) {
  cluster_state(cluster).loaded_code.insert(m.task_type);
}

}  // namespace fem2::sysvm
