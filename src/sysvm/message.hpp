// The system programmer's VM message protocol — exactly the seven message
// types the paper lists:
//
//   "Messages from tasks:
//      initiate K replications of a task of type T
//      pause and notify parent task
//      resume a child task
//      terminate and notify parent
//      remote procedure call
//      remote procedure return
//      load code/constants"
#pragma once

#include <any>
#include <cstdint>
#include <string>
#include <variant>

#include "hw/config.hpp"
#include "support/check.hpp"

namespace fem2::sysvm {

/// Globally unique task identity.  Id 0 is reserved for "no task" (the
/// external environment / machine boot).
using TaskId = std::uint64_t;
inline constexpr TaskId kNoTask = 0;

/// Token correlating a remote procedure call with its return.
using CallToken = std::uint64_t;

/// A typed value travelling in a message, with its wire size.  The payload
/// value itself is host data (std::any); `bytes` is what the simulated
/// network and memory accounting charge for it.
struct Payload {
  std::any value;
  std::size_t bytes = 0;

  Payload() = default;
  Payload(std::any v, std::size_t b) : value(std::move(v)), bytes(b) {}

  bool empty() const { return !value.has_value(); }

  template <typename T>
  const T& as() const {
    const T* p = std::any_cast<T>(&value);
    if (p == nullptr) {
      throw support::Error(
          std::string("payload type mismatch: expected ") + typeid(T).name() +
          ", got " + (value.has_value() ? value.type().name() : "<empty>"));
    }
    return *p;
  }

  template <typename T>
  static Payload of(T v, std::size_t bytes) {
    return Payload(std::any(std::move(v)), bytes);
  }
};

/// "initiate K replications of a task of type T".  One message per
/// replication arrives at the hosting cluster (the OS fans the request out
/// at the source, as a real kernel would build K activation requests).
struct MsgInitiate {
  std::string task_type;
  TaskId task = kNoTask;            ///< id pre-assigned by the initiating OS
  TaskId parent = kNoTask;
  std::uint32_t replication_index = 0;
  std::uint32_t replication_count = 1;
  Payload params;
};

/// "pause and notify parent task" — sent to the parent's cluster.
struct MsgPauseNotify {
  TaskId child = kNoTask;
  TaskId parent = kNoTask;
};

/// "resume a child task" — may carry a datum (broadcast delivers data to a
/// set of paused tasks by resuming each with the payload).
struct MsgResumeChild {
  TaskId child = kNoTask;
  Payload datum;
};

/// "terminate and notify parent" — carries the task's result.
struct MsgTerminateNotify {
  TaskId child = kNoTask;
  TaskId parent = kNoTask;
  Payload result;
};

/// "remote procedure call" — location was determined by the caller (from
/// the window the procedure operates on); executed by any available PE of
/// the target cluster.
struct MsgRemoteCall {
  std::string procedure;
  TaskId caller = kNoTask;
  CallToken token = 0;
  Payload args;
  /// Incarnation of the caller at send time (stamped by the OS).  A call
  /// whose caller was reaped and re-initiated by cluster-loss recovery is
  /// stale and must not execute on the new incarnation's behalf.
  std::uint64_t caller_epoch = 0;
};

/// "remote procedure return".
struct MsgRemoteReturn {
  TaskId caller = kNoTask;
  CallToken token = 0;
  Payload result;
};

/// "load code/constants" — ships a code block to a cluster that does not
/// yet hold it.
struct MsgLoadCode {
  std::string task_type;
  std::size_t code_bytes = 0;
};

using Message =
    std::variant<MsgInitiate, MsgPauseNotify, MsgResumeChild,
                 MsgTerminateNotify, MsgRemoteCall, MsgRemoteReturn,
                 MsgLoadCode>;

/// Stable index for metrics tables (order matches the paper's list).
enum class MessageType : std::size_t {
  Initiate = 0,
  PauseNotify = 1,
  ResumeChild = 2,
  TerminateNotify = 3,
  RemoteCall = 4,
  RemoteReturn = 5,
  LoadCode = 6,
};
inline constexpr std::size_t kMessageTypeCount = 7;

MessageType message_type(const Message& m);
std::string_view message_type_name(MessageType t);

/// Wire size: fixed header plus name strings plus payload bytes.
std::size_t message_bytes(const Message& m);

}  // namespace fem2::sysvm
