#include "sysvm/heap.hpp"

#include <algorithm>

namespace fem2::sysvm {

std::string_view heap_policy_name(HeapPolicy p) {
  switch (p) {
    case HeapPolicy::FirstFit: return "first-fit";
    case HeapPolicy::BestFit: return "best-fit";
    case HeapPolicy::NextFit: return "next-fit";
  }
  FEM2_UNREACHABLE("bad HeapPolicy");
}

Heap::Heap(std::size_t capacity, HeapPolicy policy, std::size_t alignment)
    : capacity_(capacity), policy_(policy), alignment_(alignment) {
  FEM2_CHECK(capacity > 0);
  FEM2_CHECK_MSG(alignment > 0 && (alignment & (alignment - 1)) == 0,
                 "alignment must be a power of two");
  free_.emplace(0, capacity);
}

std::map<std::size_t, std::size_t>::iterator Heap::find_fit(
    std::size_t bytes) {
  switch (policy_) {
    case HeapPolicy::FirstFit: {
      for (auto it = free_.begin(); it != free_.end(); ++it) {
        ++stats_.search_steps;
        if (it->second >= bytes) return it;
      }
      return free_.end();
    }
    case HeapPolicy::BestFit: {
      auto best = free_.end();
      for (auto it = free_.begin(); it != free_.end(); ++it) {
        ++stats_.search_steps;
        if (it->second >= bytes &&
            (best == free_.end() || it->second < best->second)) {
          best = it;
        }
      }
      return best;
    }
    case HeapPolicy::NextFit: {
      // Start at the cursor, wrap once.
      auto start = free_.lower_bound(next_fit_cursor_);
      for (auto it = start; it != free_.end(); ++it) {
        ++stats_.search_steps;
        if (it->second >= bytes) return it;
      }
      for (auto it = free_.begin(); it != start; ++it) {
        ++stats_.search_steps;
        if (it->second >= bytes) return it;
      }
      return free_.end();
    }
  }
  FEM2_UNREACHABLE("bad HeapPolicy");
}

std::size_t Heap::allocate(std::size_t bytes) {
  FEM2_CHECK_MSG(bytes > 0, "zero-byte allocation");
  bytes = (bytes + alignment_ - 1) & ~(alignment_ - 1);

  const auto it = find_fit(bytes);
  ++stats_.allocations;
  if (it == free_.end()) {
    ++stats_.failed_allocations;
    --stats_.allocations;  // count only successful allocations
    return kNullAddress;
  }
  const std::size_t address = it->first;
  const std::size_t block = it->second;
  free_.erase(it);
  if (block > bytes) {
    free_.emplace(address + bytes, block - bytes);
  }
  allocated_.emplace(address, bytes);
  stats_.in_use += bytes;
  stats_.high_water = std::max(stats_.high_water, stats_.in_use);
  next_fit_cursor_ = address + bytes;
  return address;
}

void Heap::free(std::size_t address) {
  const auto it = allocated_.find(address);
  FEM2_CHECK_MSG(it != allocated_.end(), "freeing an unallocated address");
  std::size_t start = it->first;
  std::size_t size = it->second;
  allocated_.erase(it);
  stats_.in_use -= size;
  ++stats_.frees;

  // Coalesce with the following free block.
  auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + size) {
    size += next->second;
    next = free_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      size += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(start, size);
}

std::size_t Heap::largest_free_block() const {
  std::size_t largest = 0;
  for (const auto& [addr, size] : free_) largest = std::max(largest, size);
  return largest;
}

std::size_t Heap::block_size(std::size_t address) const {
  const auto it = allocated_.find(address);
  FEM2_CHECK_MSG(it != allocated_.end(), "block_size of unallocated address");
  return it->second;
}

const HeapStats& Heap::stats() const {
  const std::size_t total_free = capacity_ - stats_.in_use;
  stats_.external_fragmentation =
      total_free == 0 ? 0.0
                      : 1.0 - static_cast<double>(largest_free_block()) /
                                  static_cast<double>(total_free);
  return stats_;
}

void Heap::check_invariants() const {
  // Allocated and free blocks must tile [0, capacity) without overlap, and
  // no two free blocks may be adjacent (full coalescing).
  std::map<std::size_t, std::pair<std::size_t, bool>> blocks;  // addr -> (size, is_free)
  for (const auto& [a, s] : allocated_) blocks.emplace(a, std::make_pair(s, false));
  for (const auto& [a, s] : free_) {
    const bool inserted = blocks.emplace(a, std::make_pair(s, true)).second;
    FEM2_CHECK_MSG(inserted, "heap: address in both free and allocated maps");
  }
  std::size_t cursor = 0;
  bool prev_free = false;
  for (const auto& [addr, info] : blocks) {
    FEM2_CHECK_MSG(addr == cursor, "heap: gap or overlap in address space");
    FEM2_CHECK_MSG(info.first > 0, "heap: zero-size block");
    FEM2_CHECK_MSG(!(prev_free && info.second),
                   "heap: adjacent free blocks not coalesced");
    cursor = addr + info.first;
    prev_free = info.second;
  }
  FEM2_CHECK_MSG(cursor == capacity_, "heap: blocks do not cover capacity");
}

}  // namespace fem2::sysvm
