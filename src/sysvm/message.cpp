#include "sysvm/message.hpp"

namespace fem2::sysvm {

namespace {
/// Fixed wire header: message type, source/destination, task ids, token.
constexpr std::size_t kHeaderBytes = 32;
}  // namespace

MessageType message_type(const Message& m) {
  return static_cast<MessageType>(m.index());
}

std::string_view message_type_name(MessageType t) {
  switch (t) {
    case MessageType::Initiate: return "initiate";
    case MessageType::PauseNotify: return "pause-notify";
    case MessageType::ResumeChild: return "resume-child";
    case MessageType::TerminateNotify: return "terminate-notify";
    case MessageType::RemoteCall: return "remote-call";
    case MessageType::RemoteReturn: return "remote-return";
    case MessageType::LoadCode: return "load-code";
  }
  FEM2_UNREACHABLE("bad MessageType");
}

std::size_t message_bytes(const Message& m) {
  struct Visitor {
    std::size_t operator()(const MsgInitiate& v) const {
      return kHeaderBytes + v.task_type.size() + v.params.bytes;
    }
    std::size_t operator()(const MsgPauseNotify&) const {
      return kHeaderBytes;
    }
    std::size_t operator()(const MsgResumeChild& v) const {
      return kHeaderBytes + v.datum.bytes;
    }
    std::size_t operator()(const MsgTerminateNotify& v) const {
      return kHeaderBytes + v.result.bytes;
    }
    std::size_t operator()(const MsgRemoteCall& v) const {
      return kHeaderBytes + v.procedure.size() + v.args.bytes;
    }
    std::size_t operator()(const MsgRemoteReturn& v) const {
      return kHeaderBytes + v.result.bytes;
    }
    std::size_t operator()(const MsgLoadCode& v) const {
      return kHeaderBytes + v.task_type.size() + v.code_bytes;
    }
  };
  return std::visit(Visitor{}, m);
}

}  // namespace fem2::sysvm
