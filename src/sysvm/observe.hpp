// Observation interface for the OS layer.  Analysis tooling (src/analyze)
// installs an OsObserver to watch task steps, message traffic, and task
// lifecycle without perturbing the simulation: every hook is a const view
// of the event that just happened (or is about to), and the default
// implementation of each hook is a no-op so the OS pays one pointer test
// per hook site when no observer is attached.
//
// Hook ordering contract:
//   on_task_created        after the task record exists (initiate decoded)
//   on_step_begin/end      tightly bracket TaskProgram::resume(); all host
//                          code of the step runs between them
//   on_task_send           when a buffered send is applied to the wire,
//                          after the step's cycles elapsed (per message)
//   on_message             when a kernel decodes the message at `cluster`
//   on_procedure_begin/end bracket a remote procedure's host execution
//   on_task_finished       when the task transitions to Finished
#pragma once

#include "hw/config.hpp"
#include "sysvm/message.hpp"

namespace fem2::sysvm {

class OsObserver {
 public:
  virtual ~OsObserver() = default;

  virtual void on_task_created(TaskId task, TaskId parent) {
    (void)task;
    (void)parent;
  }
  virtual void on_task_finished(TaskId task) { (void)task; }

  virtual void on_step_begin(TaskId task) { (void)task; }
  virtual void on_step_end(TaskId task) { (void)task; }

  /// `from` is the sending task (kNoTask for OS-internal traffic).
  virtual void on_task_send(TaskId from, hw::ClusterId to,
                            const Message& message) {
    (void)from;
    (void)to;
    (void)message;
  }
  virtual void on_message(hw::ClusterId cluster, const Message& message) {
    (void)cluster;
    (void)message;
  }

  virtual void on_procedure_begin(const MsgRemoteCall& call,
                                  hw::ClusterId cluster) {
    (void)call;
    (void)cluster;
  }
  virtual void on_procedure_end(const MsgRemoteCall& call,
                                hw::ClusterId cluster) {
    (void)call;
    (void)cluster;
  }
};

}  // namespace fem2::sysvm
