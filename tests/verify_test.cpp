// Tests for the static verification layer (fem2_analyze --verify):
// grammar language algorithms, transformation-rule type preservation, and
// bounded protocol model checking — including the seeded-defect
// experiments: a rule spec that drops a required arc, a receiver with
// duplicate suppression disabled, and a non-sticky degraded mode.  Each
// must produce a Finding with a source location or a counterexample trace.
#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/lint.hpp"
#include "analyze/model_check.hpp"
#include "analyze/verify.hpp"
#include "hgraph/grammar_algorithms.hpp"
#include "hgraph/grammar_parser.hpp"
#include "hgraph/transform.hpp"
#include "spec/layers.hpp"
#include "spec/transforms.hpp"

namespace fem2 {
namespace {

using analyze::Finding;
using analyze::Severity;
using hgraph::Grammar;
using hgraph::parse_grammar;

// --- pass 1: grammar language algorithms -----------------------------------

TEST(GrammarAlgorithms, UnproductiveNonterminalHasEmptyLanguage) {
  const Grammar g = parse_grammar(R"(
root ::= { leaf: INT, spin?: loop }
loop ::= { next: loop }
)");
  const auto productive = hgraph::productive_nonterminals(g);
  EXPECT_TRUE(productive.contains("root"));
  EXPECT_FALSE(productive.contains("loop"));
  EXPECT_TRUE(hgraph::empty_language(g, "loop"));
  EXPECT_FALSE(hgraph::empty_language(g, "root"));
  EXPECT_FALSE(hgraph::witness_graph(g, "loop").ok);
}

TEST(GrammarAlgorithms, WitnessesOfAllLayerGrammarsConform) {
  for (const Grammar& g :
       {spec::appvm_grammar(), spec::db_grammar(), spec::navm_grammar(),
        spec::sysvm_grammar(), spec::hw_grammar()}) {
    for (const std::string& nt : g.nonterminals()) {
      const auto witness = hgraph::witness_graph(g, nt);
      ASSERT_TRUE(witness.ok) << nt << ": " << witness.error;
      EXPECT_TRUE(g.conforms(witness.graph, witness.root, nt))
          << "witness for " << nt << " rejected";
    }
  }
}

TEST(GrammarAlgorithms, SimulationIsReflexive) {
  const Grammar g = spec::appvm_grammar();
  const hgraph::SimulationRelation sim(g, g);
  for (const std::string& nt : g.nonterminals())
    EXPECT_TRUE(sim.holds(nt, nt)) << nt;
}

TEST(GrammarAlgorithms, DbGrammarRefinesAppvmStorageFragment) {
  const auto result = hgraph::refines(spec::db_grammar(), "dbengine",
                                      spec::appvm_grammar(), "storage");
  EXPECT_TRUE(result.ok) << result.counterexample;
  EXPECT_GT(result.pairs_checked, 0u);
}

TEST(GrammarAlgorithms, RefinementRejectsIncompatibleShapes) {
  const Grammar g = spec::appvm_grammar();
  // A point has no `name: STRING` arc, so it cannot refine a material.
  const auto result = hgraph::refines(g, "point", g, "material");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(VerifyGrammar, CleanLayerGrammarsProduceNoFindings) {
  for (const Grammar& g :
       {spec::appvm_grammar(), spec::db_grammar(), spec::navm_grammar(),
        spec::sysvm_grammar(), spec::hw_grammar()}) {
    const auto findings = analyze::verify_grammar(g, analyze::Layer::None);
    EXPECT_TRUE(findings.empty())
        << findings.front().to_string();
  }
}

TEST(VerifyGrammar, EmptyLanguageBecomesFinding) {
  const Grammar g = parse_grammar("loop ::= { next: loop }\n");
  const auto findings = analyze::verify_grammar(g, analyze::Layer::None);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "empty-language");
  EXPECT_EQ(findings[0].entity, "loop");
  EXPECT_EQ(findings[0].severity, Severity::Error);
  EXPECT_NE(findings[0].evidence.find("line 1"), std::string::npos);
}

// --- pass 2: rule type preservation ----------------------------------------

TEST(VerifyTransforms, BuiltinTransformSpecsPreserveTypes) {
  const auto registry = spec::make_appvm_transforms();
  analyze::VerifyStats stats;
  const auto findings =
      analyze::verify_transforms(registry, analyze::Layer::Appvm, &stats);
  EXPECT_TRUE(findings.empty())
      << findings.front().to_string();
  EXPECT_EQ(stats.rules, 5u);
  EXPECT_GE(stats.paths, 6u);  // add-load declares two paths
}

/// Registry fixture: `make-point` should build a conforming point.
hgraph::TransformRegistry defective_registry(hgraph::RuleSpec spec) {
  hgraph::TransformRegistry registry(parse_grammar(R"(
point     ::= { x: REAL, y: REAL }
pointargs ::= { x: REAL, y: REAL }
pointset  ::= { member[*]: point }
)"));
  registry.register_transform(
      "make-point", {"pointargs", "point", std::move(spec)},
      [](hgraph::Invoker&, hgraph::HGraph& g, hgraph::NodeId) {
        return g.add_node();
      });
  return registry;
}

TEST(VerifyTransforms, RuleDroppingRequiredArcIsCaughtWithLocation) {
  using namespace hgraph;
  // The seeded defect: the spec builds a point with x but never adds y.
  RuleSpec spec{{{{op_let("x", "arg", "x"), op_fresh("p"),
                   op_add_arc("p", "x", "x"), op_return("p")}}},
                SourceLoc{42, 1}};
  const auto registry = defective_registry(std::move(spec));
  const auto findings =
      analyze::verify_transforms(registry, analyze::Layer::Appvm);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "type-preservation");
  EXPECT_EQ(findings[0].entity, "make-point");
  EXPECT_EQ(findings[0].severity, Severity::Error);
  EXPECT_NE(findings[0].message.find("required arc 'y' is never added"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].evidence.find("line 42"), std::string::npos)
      << findings[0].evidence;
}

TEST(VerifyTransforms, WrongAtomKindOnArcIsCaught) {
  using namespace hgraph;
  // y is built as a STRING atom where the grammar demands REAL.
  RuleSpec spec{{{{op_let("x", "arg", "x"), op_atom("y", AtomKind::String),
                   op_fresh("p"), op_add_arc("p", "x", "x"),
                   op_add_arc("p", "y", "y"), op_return("p")}}},
                SourceLoc{7, 1}};
  const auto registry = defective_registry(std::move(spec));
  const auto findings =
      analyze::verify_transforms(registry, analyze::Layer::Appvm);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "type-preservation");
  EXPECT_NE(findings[0].message.find("arc 'y'"), std::string::npos)
      << findings[0].message;
}

TEST(VerifyTransforms, RuleWithoutSpecIsReportedUnchecked) {
  const auto registry = defective_registry(hgraph::RuleSpec{});
  const auto findings =
      analyze::verify_transforms(registry, analyze::Layer::Appvm);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unchecked-rule");
  EXPECT_EQ(findings[0].severity, Severity::Info);
}

// --- pass 3: bounded protocol model checking -------------------------------

TEST(ModelCheck, MessagingProtocolDeliversExactlyOnce) {
  const auto result = analyze::check_messaging({});
  EXPECT_TRUE(result.ok) << result.violation << "\n"
                         << result.trace_to_string();
  EXPECT_FALSE(result.bounded_out);
  EXPECT_GT(result.states, 500u);
}

TEST(ModelCheck, MessagingExhaustsTenThousandStates) {
  analyze::MessagingModelOptions options;
  options.messages = 3;
  options.max_retransmits = 3;
  options.network_capacity = 2;
  options.max_states = 500'000;
  const auto result = analyze::check_messaging(options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.bounded_out);
  EXPECT_GE(result.states, 10'000u);
}

TEST(ModelCheck, DisabledDedupYieldsDuplicateDeliveryCounterexample) {
  analyze::MessagingModelOptions options;
  options.dedup = false;  // the seeded defect
  const auto result = analyze::check_messaging(options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("delivered twice"), std::string::npos)
      << result.violation;
  // BFS yields a minimal trace: send, deliver, retransmit, deliver again.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front(), "send(m1)");
  EXPECT_EQ(std::count(result.trace.begin(), result.trace.end(),
                       std::string("deliver(m1)")),
            2);
}

TEST(ModelCheck, DbHealthLifecycleHolds) {
  const auto result = analyze::check_db_health({});
  EXPECT_TRUE(result.ok) << result.violation << "\n"
                         << result.trace_to_string();
  EXPECT_FALSE(result.bounded_out);
}

TEST(ModelCheck, DbHealthExhaustsTenThousandStates) {
  analyze::HealthModelOptions options;
  options.commits = 7;
  options.checkpoints = 3;
  options.max_states = 500'000;
  const auto result = analyze::check_db_health(options);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.bounded_out);
  EXPECT_GE(result.states, 10'000u);
}

TEST(ModelCheck, NonStickyDegradeYieldsCounterexample) {
  analyze::HealthModelOptions options;
  options.sticky = false;  // the seeded defect
  const auto result = analyze::check_db_health(options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("without recover()"), std::string::npos)
      << result.violation;
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.back(), "read-ok");
}

// --- the facade ------------------------------------------------------------

TEST(VerifySpecs, CleanSpecsProduceZeroFindings) {
  const auto report = analyze::verify_specs();
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().to_string();
  EXPECT_EQ(report.stats.grammars, 5u);
  EXPECT_GT(report.stats.witnesses, 40u);
  EXPECT_EQ(report.stats.rules, 5u);
  EXPECT_TRUE(report.messaging.ok);
  EXPECT_TRUE(report.db_health.ok);
}

// --- satellite: lint root inference ----------------------------------------

TEST(GrammarLint, FullySelfReferentialGrammarGetsOneNoRootFinding) {
  const Grammar g = parse_grammar(R"(
ping ::= { tag: INT, other?: pong }
pong ::= { tag: INT, other?: ping }
)");
  const auto findings = analyze::lint_grammar(g, "cyclic");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-root");
  EXPECT_EQ(findings[0].severity, Severity::Warning);
}

}  // namespace
}  // namespace fem2
