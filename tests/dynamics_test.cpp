// Structural dynamics tests: eigen solver properties, analytic natural
// frequencies, Newmark time integration physics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fem/dynamics.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "la/eigen.hpp"

namespace fem2::fem {
namespace {

Material aluminium() {
  Material m;
  m.youngs_modulus = 70e9;
  m.poisson_ratio = 0.33;
  m.density = 2700.0;
  m.area = 4e-4;
  m.moment_of_inertia = 1.333e-8;  // 2cm x 2cm square section
  m.thickness = 0.004;
  return m;
}

TEST(Eigen, SmallGeneralizedProblemExact) {
  // K = diag(2, 8), M = diag(1, 2) -> eigenvalues 2 and 4.
  la::TripletBuilder kb(2, 2), mb(2, 2);
  kb.add(0, 0, 2.0);
  kb.add(1, 1, 8.0);
  mb.add(0, 0, 1.0);
  mb.add(1, 1, 2.0);
  const auto result = la::lowest_eigenpairs(kb.build(), mb.build(),
                                            {.modes = 2});
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.pairs.size(), 2u);
  EXPECT_NEAR(result.pairs[0].value, 2.0, 1e-9);
  EXPECT_NEAR(result.pairs[1].value, 4.0, 1e-9);
}

TEST(Eigen, PairsAreMOrthonormalAndSatisfyResidual) {
  // 1-D Laplacian K, identity-ish M.
  const std::size_t n = 20;
  la::TripletBuilder kb(n, n), mb(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    kb.add(i, i, 2.0);
    if (i > 0) kb.add(i, i - 1, -1.0);
    if (i + 1 < n) kb.add(i, i + 1, -1.0);
    mb.add(i, i, 1.5);
  }
  const auto k = kb.build();
  const auto m = mb.build();
  const auto result = la::lowest_eigenpairs(k, m, {.modes = 4});
  ASSERT_TRUE(result.converged);

  for (std::size_t i = 0; i < result.pairs.size(); ++i) {
    const auto& phi = result.pairs[i].vector;
    const double lambda = result.pairs[i].value;
    // Residual ||K phi - lambda M phi|| small.
    auto r = k.multiply(phi);
    la::axpy(-lambda, m.multiply(phi), r);
    EXPECT_LT(la::norm2(r), 1e-6) << "mode " << i;
    // M-orthonormal.
    for (std::size_t j = 0; j <= i; ++j) {
      const double mij =
          la::dot(result.pairs[i].vector, m.multiply(result.pairs[j].vector));
      EXPECT_NEAR(mij, i == j ? 1.0 : 0.0, 1e-7);
    }
    // Rayleigh quotient agrees.
    EXPECT_NEAR(la::rayleigh_quotient(k, m, phi), lambda,
                std::abs(lambda) * 1e-8);
  }
  // Known analytic eigenvalues of the Dirichlet Laplacian / 1.5.
  for (std::size_t i = 0; i < 4; ++i) {
    const double exact =
        4.0 *
        std::pow(std::sin(std::numbers::pi * static_cast<double>(i + 1) /
                          (2.0 * (static_cast<double>(n) + 1.0))),
                 2) /
        1.5;
    EXPECT_NEAR(result.pairs[i].value, exact, exact * 1e-6);
  }
}

TEST(Dynamics, TotalMassMatchesGeometry) {
  const auto material = aluminium();
  FrameOptions options;
  options.segments = 10;
  options.length = 2.0;
  options.material = material;
  const auto beam = make_cantilever_beam(options, 1.0);
  EXPECT_NEAR(total_mass(beam), material.density * material.area * 2.0,
              1e-9);

  PlateMeshOptions plate;
  plate.nx = 8;
  plate.ny = 4;
  plate.width = 2.0;
  plate.height = 1.0;
  plate.material = material;
  const auto sheet = make_plate(plate);
  EXPECT_NEAR(total_mass(sheet),
              material.density * material.thickness * 2.0 * 1.0, 1e-9);
}

TEST(Dynamics, LumpedMassConservesTranslationalMass) {
  const auto model = make_cantilever_beam(
      {.segments = 6, .length = 3.0, .material = aluminium()}, 1.0);
  // Unconstrained map so every dof appears.
  StructureModel free_model = model;
  free_model.constraints.clear();
  free_model.add_constraint(0, 0);  // keep at least one constraint... no:
  free_model.constraints.clear();
  const DofMap map = build_dof_map(free_model);
  const auto m = lumped_mass_matrix(free_model, map);
  // Sum of x-dof masses equals total mass.
  double x_mass = 0.0;
  for (std::size_t node = 0; node < free_model.nodes.size(); ++node)
    x_mass += m.value_at(map.full_index(node, 0), map.full_index(node, 0));
  EXPECT_NEAR(x_mass, total_mass(free_model), 1e-9);
}

TEST(Dynamics, CantileverFirstFrequencyMatchesEulerBernoulli) {
  // f1 = (1.875104)^2 / (2 pi) * sqrt(E I / (rho A L^4))
  const auto material = aluminium();
  const double length = 1.0;
  const auto model = make_cantilever_beam(
      {.segments = 24, .length = length, .material = material}, 1.0);

  const auto modal = modal_analysis(model, 2);
  ASSERT_TRUE(modal.converged);
  ASSERT_GE(modal.modes.size(), 1u);

  const double beta1 = 1.8751040687;
  const double exact =
      beta1 * beta1 / (2.0 * std::numbers::pi) *
      std::sqrt(material.youngs_modulus * material.moment_of_inertia /
                (material.density * material.area * std::pow(length, 4)));
  // Lumped mass converges from below; a few percent at 24 elements.
  EXPECT_NEAR(modal.modes[0].frequency, exact, exact * 0.03);
  // Second bending mode is well separated (analytic ratio ~6.27).
  ASSERT_GE(modal.modes.size(), 2u);
  EXPECT_GT(modal.modes[1].frequency, 4.0 * modal.modes[0].frequency);
}

TEST(Dynamics, AxialRodFrequencyMatchesAnalytic) {
  // Fixed-free rod, axial mode: f1 = c / (4 L), c = sqrt(E / rho).
  const auto material = aluminium();
  const double length = 2.0;
  StructureModel model;
  const auto mat = model.add_material(material);
  const std::size_t segments = 40;
  for (std::size_t i = 0; i <= segments; ++i)
    model.add_node(static_cast<double>(i) * length /
                       static_cast<double>(segments),
                   0.0);
  for (std::size_t i = 0; i < segments; ++i)
    model.add_element(ElementType::Bar2, {i, i + 1}, mat);
  model.fix_node(0);
  for (std::size_t i = 1; i <= segments; ++i)
    model.add_constraint(i, 1);  // keep axial-only
  model.load_set("none");

  const auto modal = modal_analysis(model, 1);
  ASSERT_TRUE(modal.converged);
  const double c = std::sqrt(material.youngs_modulus / material.density);
  const double exact = c / (4.0 * length);
  EXPECT_NEAR(modal.modes[0].frequency, exact, exact * 0.01);
}

TEST(Dynamics, NewmarkFreeVibrationPeriodMatchesMode) {
  // Pluck the cantilever tip and watch it ring at its first frequency.
  const auto material = aluminium();
  const auto model = make_cantilever_beam(
      {.segments = 8, .length = 1.0, .material = material}, 1.0);
  const auto modal = modal_analysis(model, 1);
  ASSERT_TRUE(modal.converged);
  const double f1 = modal.modes[0].frequency;
  const double period = 1.0 / f1;

  const AssembledSystem system = assemble(model);
  const std::size_t n = system.dofs.free_dofs;
  // Impulse-like start: constant tip load for the first tenth period, then
  // release and ring down.
  const auto rhs = system.load_vector(model.load_sets.at("tip"));
  NewmarkOptions options;
  options.dt = period / 200.0;
  options.steps = 800;  // four periods
  const auto transient = newmark_transient(
      model,
      [&](double t) {
        return t < period / 10.0 ? rhs : std::vector<double>(n, 0.0);
      },
      options);

  // Find the dominant period from zero crossings of the tip displacement
  // after release.
  const std::size_t tip_dof = static_cast<std::size_t>(
      system.dofs.full_to_reduced[system.dofs.full_index(8, 1)]);
  std::vector<double> crossings;
  for (std::size_t i = 1; i < transient.samples.size(); ++i) {
    const double a = transient.samples[i - 1].displacement[tip_dof];
    const double b = transient.samples[i].displacement[tip_dof];
    if (transient.samples[i].time > period / 5.0 && a < 0.0 && b >= 0.0) {
      const double frac = a / (a - b);
      crossings.push_back(transient.samples[i - 1].time +
                          frac * options.dt);
    }
  }
  ASSERT_GE(crossings.size(), 3u);
  const double measured_period =
      (crossings.back() - crossings.front()) /
      static_cast<double>(crossings.size() - 1);
  EXPECT_NEAR(measured_period, period, period * 0.02);
}

TEST(Dynamics, NewmarkStaticLoadConvergesToStaticSolution) {
  // With mass-proportional damping, a suddenly applied constant load
  // settles onto the static deflection.
  const auto material = aluminium();
  const auto model = make_cantilever_beam(
      {.segments = 6, .length = 1.0, .material = material}, 50.0);
  const AssembledSystem system = assemble(model);
  const auto rhs = system.load_vector(model.load_sets.at("tip"));

  const auto modal = modal_analysis(model, 1);
  const double period = 1.0 / modal.modes[0].frequency;
  NewmarkOptions options;
  options.dt = period / 100.0;
  options.steps = 4000;
  options.alpha_m = 2.0 * modal.modes[0].omega * 0.2;  // ~20% damping

  const auto transient =
      newmark_transient(model, [&](double) { return rhs; }, options);

  const auto static_solution = solve_reduced(
      system, rhs, {.kind = SolverKind::DenseCholesky});
  const auto& final_u = transient.samples.back().displacement;
  for (std::size_t i = 0; i < final_u.size(); ++i) {
    const double expect =
        static_solution.displacements.values[system.dofs.reduced_to_full[i]];
    EXPECT_NEAR(final_u[i], expect, 1e-8 + std::abs(expect) * 0.02);
  }
}

TEST(Dynamics, UndampedNewmarkConservesPeakAmplitude) {
  // Average-acceleration Newmark is non-dissipative: the ring-down peak
  // stays (close to) constant over several periods.
  const auto material = aluminium();
  const auto model = make_cantilever_beam(
      {.segments = 6, .length = 1.0, .material = material}, 10.0);
  const AssembledSystem system = assemble(model);
  const auto rhs = system.load_vector(model.load_sets.at("tip"));
  const auto modal = modal_analysis(model, 1);
  const double period = 1.0 / modal.modes[0].frequency;

  NewmarkOptions options;
  options.dt = period / 150.0;
  options.steps = 1500;  // ten periods
  const auto transient = newmark_transient(
      model,
      [&](double t) {
        return t < period / 10.0
                   ? rhs
                   : std::vector<double>(system.dofs.free_dofs, 0.0);
      },
      options);

  // Compare the max amplitude in the 2nd and 9th periods.
  auto peak_in = [&](double t0, double t1) {
    double peak = 0.0;
    for (const auto& sample : transient.samples) {
      if (sample.time >= t0 && sample.time < t1)
        peak = std::max(peak, la::norm_inf(sample.displacement));
    }
    return peak;
  };
  const double early = peak_in(1.0 * period, 2.0 * period);
  const double late = peak_in(8.0 * period, 9.0 * period);
  ASSERT_GT(early, 0.0);
  EXPECT_NEAR(late, early, early * 0.05);
}

}  // namespace
}  // namespace fem2::fem
