// Query-layer tests: the planner contract from db/query.hpp.  Whatever
// access path serves a filter — revision index, name range, kind bucket
// or full scan — the result set must be identical to brute-force
// filtering of the directory, the chosen plan must be observable, and
// the secondary indexes must survive erases, history trimming and
// recovery (they are rebuilt, not logged).
#include <algorithm>
#include <tuple>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "db/query.hpp"

namespace fs = std::filesystem;
using namespace fem2;

namespace {

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("fem2_query_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
  std::string str() const { return path.string(); }
};

/// Brute-force reference: filter the full directory listing.
std::vector<db::EntryInfo> reference_rows(const db::Engine& engine,
                                          const db::QueryFilter& filter) {
  std::vector<db::EntryInfo> rows;
  for (const auto& entry : engine.list()) {
    if (!filter.kind.empty() && entry.kind != filter.kind) continue;
    if (!filter.name_prefix.empty() &&
        entry.name.compare(0, filter.name_prefix.size(),
                           filter.name_prefix) != 0)
      continue;
    if (entry.revision < filter.min_revision) continue;
    if (entry.revision > filter.max_revision) continue;
    rows.push_back(entry);
  }
  return rows;
}

std::vector<std::string> names_of(const std::vector<db::EntryInfo>& rows) {
  std::vector<std::string> names;
  for (const auto& row : rows) names.push_back(row.name);
  return names;
}

using RowTuple = std::tuple<std::string, std::string, std::size_t,
                            std::uint64_t>;

std::vector<RowTuple> as_tuples(std::vector<db::EntryInfo> rows,
                                bool sort_by_name = false) {
  if (sort_by_name) {
    std::sort(rows.begin(), rows.end(),
              [](const db::EntryInfo& a, const db::EntryInfo& b) {
                return a.name < b.name;
              });
  }
  std::vector<RowTuple> out;
  for (const auto& row : rows)
    out.emplace_back(row.name, row.kind, row.bytes, row.revision);
  return out;
}

void seed_engine(db::Engine& engine) {
  engine.put("bridge", "model", "m1");        // rev 1
  engine.put("bridge-deck", "model", "m2");   // rev 1
  engine.put("bridge", "model", "m3", 1);     // rev 2
  engine.put("mast", "results", "r1");        // rev 1
  engine.put("mast", "results", "r2", 1);     // rev 2
  engine.put("mast", "results", "r3", 2);     // rev 3
  engine.put("panel", "model", "m4");         // rev 1
  engine.put("zz-scratch", "notes", "n1");    // rev 1
}

}  // namespace

TEST(Query, EmptyFilterScansEverything) {
  db::Engine engine;
  seed_engine(engine);
  const auto result = engine.query({});
  EXPECT_EQ(result.plan, "scan");
  EXPECT_EQ(result.rows.size(), engine.size());
  EXPECT_EQ(result.scanned, engine.size());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(engine.stats().queries, 1u);
}

TEST(Query, KindFilterUsesKindIndex) {
  db::Engine engine;
  seed_engine(engine);
  db::QueryFilter filter;
  filter.kind = "model";
  const auto result = engine.query(filter);
  EXPECT_EQ(result.plan, "kind-index");
  EXPECT_EQ(names_of(result.rows),
            (std::vector<std::string>{"bridge", "bridge-deck", "panel"}));
  // The bucket held exactly the candidates: no off-index scanning.
  EXPECT_EQ(result.scanned, 3u);
  EXPECT_EQ(as_tuples(result.rows),
            as_tuples(reference_rows(engine, filter)));
}

TEST(Query, PrefixFilterUsesNameRange) {
  db::Engine engine;
  seed_engine(engine);
  db::QueryFilter filter;
  filter.name_prefix = "bridge";
  const auto result = engine.query(filter);
  EXPECT_EQ(result.plan, "name-range");
  EXPECT_EQ(names_of(result.rows),
            (std::vector<std::string>{"bridge", "bridge-deck"}));
  EXPECT_EQ(as_tuples(result.rows),
            as_tuples(reference_rows(engine, filter)));
}

TEST(Query, RevisionWindowUsesRevisionIndex) {
  db::Engine engine;
  seed_engine(engine);
  db::QueryFilter filter;
  filter.min_revision = 2;
  const auto result = engine.query(filter);
  EXPECT_EQ(result.plan, "revision-index");
  // Revision-index rows arrive in ascending revision order.
  EXPECT_EQ(names_of(result.rows),
            (std::vector<std::string>{"bridge", "mast"}));
  EXPECT_EQ(as_tuples(result.rows, /*sort_by_name=*/true),
            as_tuples(reference_rows(engine, filter), /*sort_by_name=*/true));
}

TEST(Query, PredicatesComposeAcrossPaths) {
  db::Engine engine;
  seed_engine(engine);
  // kind + prefix + revision window: whichever index serves, every
  // predicate is still enforced per candidate.
  db::QueryFilter filter;
  filter.kind = "model";
  filter.name_prefix = "bridge";
  filter.min_revision = 2;
  filter.max_revision = 2;
  const auto result = engine.query(filter);
  EXPECT_EQ(names_of(result.rows), (std::vector<std::string>{"bridge"}));
  EXPECT_EQ(result.rows.front().revision, 2u);
  EXPECT_EQ(as_tuples(result.rows),
            as_tuples(reference_rows(engine, filter)));
}

TEST(Query, LimitTruncatesAndSaysSo) {
  db::Engine engine;
  seed_engine(engine);
  db::QueryFilter filter;
  filter.limit = 2;
  const auto result = engine.query(filter);
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_TRUE(result.truncated);

  filter.limit = 100;
  const auto all = engine.query(filter);
  EXPECT_EQ(all.rows.size(), engine.size());
  EXPECT_FALSE(all.truncated);
}

TEST(Query, ErasedObjectsLeaveTheIndexes) {
  db::Engine engine;
  seed_engine(engine);
  engine.erase("panel");
  engine.erase("mast");

  db::QueryFilter by_kind;
  by_kind.kind = "model";
  EXPECT_EQ(names_of(engine.query(by_kind).rows),
            (std::vector<std::string>{"bridge", "bridge-deck"}));
  by_kind.kind = "results";
  EXPECT_TRUE(engine.query(by_kind).rows.empty());

  db::QueryFilter by_revision;
  by_revision.min_revision = 3;  // mast's rev-3 head is gone
  EXPECT_TRUE(engine.query(by_revision).rows.empty());

  // Re-creating after an erase re-enters both indexes.
  engine.put("panel", "model", "back", 0);
  by_kind.kind = "model";
  EXPECT_EQ(names_of(engine.query(by_kind).rows),
            (std::vector<std::string>{"bridge", "bridge-deck", "panel"}));
}

TEST(Query, IndexesRebuildAcrossRecovery) {
  TempDir dir("rebuild");
  db::EngineOptions options;
  options.directory = dir.str();
  db::QueryFilter by_kind;
  by_kind.kind = "model";
  db::QueryFilter by_revision;
  by_revision.min_revision = 2;

  std::vector<std::string> kind_names;
  std::vector<std::string> revision_names;
  {
    db::Engine engine(options);
    seed_engine(engine);
    engine.erase("zz-scratch");
    engine.checkpoint();              // part of the state arrives via
    engine.put("late", "model", "after-snapshot");  // snapshot, part via log
    kind_names = names_of(engine.query(by_kind).rows);
    revision_names = names_of(engine.query(by_revision).rows);
  }
  db::Engine reopened(options);
  EXPECT_EQ(names_of(reopened.query(by_kind).rows), kind_names);
  EXPECT_EQ(names_of(reopened.query(by_revision).rows), revision_names);
  const auto state = reopened.state();
  EXPECT_GT(state.index_kinds, 0u);
  EXPECT_EQ(state.index_entries, reopened.size());
}

TEST(Query, TransactionalWritesMaintainIndexes) {
  db::Engine engine;
  const auto txn = engine.begin();
  engine.put(txn, "a", "model", "v");
  engine.put(txn, "b", "results", "v");
  engine.commit(txn);

  db::QueryFilter filter;
  filter.kind = "results";
  EXPECT_EQ(names_of(engine.query(filter).rows),
            (std::vector<std::string>{"b"}));

  // An aborted transaction must leave no index trace.
  const auto aborted = engine.begin();
  engine.put(aborted, "c", "results", "gone");
  engine.abort(aborted);
  EXPECT_EQ(engine.query(filter).rows.size(), 1u);
}
