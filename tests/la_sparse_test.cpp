// Property tests for the CSR sparse layer: SpMV, transpose-SpMV, and
// triangular ops must agree with the dense reference on randomized
// (seeded, deterministic) matrices, including empty rows, duplicate-entry
// assembly, and 1×1/rectangular edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "la/dense.hpp"
#include "la/sparse.hpp"
#include "la/vec_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace fem2::la {
namespace {

struct Shape {
  std::size_t rows;
  std::size_t cols;
};

const Shape kShapes[] = {{1, 1}, {1, 7}, {7, 1}, {3, 7},
                         {7, 3}, {16, 16}, {33, 9}};

/// Random sparse matrix with ~density fill, built twice: dense reference
/// by accumulation and CSR via TripletBuilder.  Low densities leave some
/// rows empty; duplicate triplets (when requested) exercise the
/// duplicate-summing path.
struct RandomSparse {
  DenseMatrix dense;
  CsrMatrix csr;
};

RandomSparse random_sparse(Shape shape, double density, std::uint64_t seed,
                           bool with_duplicates = false) {
  support::Rng rng(seed);
  RandomSparse out{DenseMatrix(shape.rows, shape.cols),
                   CsrMatrix()};
  TripletBuilder builder(shape.rows, shape.cols);
  const auto entries = static_cast<std::size_t>(
      density * static_cast<double>(shape.rows * shape.cols)) + 1;
  for (std::size_t e = 0; e < entries; ++e) {
    const auto r = static_cast<std::size_t>(rng.next_below(shape.rows));
    const auto c = static_cast<std::size_t>(rng.next_below(shape.cols));
    const double v = rng.uniform(-2.0, 2.0);
    out.dense(r, c) += v;
    builder.add(r, c, v);
    if (with_duplicates && rng.uniform() < 0.5) {
      const double w = rng.uniform(-1.0, 1.0);
      out.dense(r, c) += w;
      builder.add(r, c, w);
    }
  }
  out.csr = builder.build();
  return out;
}

Vector random_vector(std::size_t n, support::Rng& rng) {
  Vector x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(CsrProperty, SpmvMatchesDense) {
  for (const Shape shape : kShapes) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      for (const double density : {0.05, 0.3, 0.9}) {
        const auto m = random_sparse(shape, density, seed * 977);
        support::Rng rng(seed);
        const Vector x = random_vector(shape.cols, rng);
        const Vector ys = m.csr.multiply(x);
        const Vector yd = m.dense.multiply(x);
        ASSERT_EQ(ys.size(), yd.size());
        for (std::size_t i = 0; i < ys.size(); ++i)
          EXPECT_NEAR(ys[i], yd[i], 1e-12)
              << shape.rows << "x" << shape.cols << " seed " << seed;
      }
    }
  }
}

TEST(CsrProperty, TransposeSpmvMatchesDense) {
  for (const Shape shape : kShapes) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto m = random_sparse(shape, 0.4, seed * 1151);
      support::Rng rng(seed + 17);
      const Vector x = random_vector(shape.rows, rng);
      const Vector ys = m.csr.multiply_transpose(x);
      const Vector yd = m.dense.multiply_transpose(x);
      ASSERT_EQ(ys.size(), yd.size());
      for (std::size_t i = 0; i < ys.size(); ++i)
        EXPECT_NEAR(ys[i], yd[i], 1e-12);
    }
  }
}

TEST(CsrProperty, DuplicateEntryAssemblySums) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto m = random_sparse({9, 9}, 0.5, seed * 313, true);
    for (std::size_t r = 0; r < 9; ++r)
      for (std::size_t c = 0; c < 9; ++c)
        EXPECT_NEAR(m.csr.value_at(r, c), m.dense(r, c), 1e-12);
  }
}

TEST(CsrProperty, EmptyRowsAndColumns) {
  // Only row 2 / col 3 populated: every other row is empty.
  TripletBuilder b(5, 6);
  b.add(2, 3, 4.5);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  const Vector y = m.multiply(Vector(6, 1.0));
  EXPECT_EQ(y, (Vector{0.0, 0.0, 4.5, 0.0, 0.0}));
  const Vector yt = m.multiply_transpose(Vector(5, 2.0));
  EXPECT_DOUBLE_EQ(yt[3], 9.0);
  // Pattern row_ptr reflects the empty rows.
  EXPECT_EQ(m.row_ptr()[0], 0u);
  EXPECT_EQ(m.row_ptr()[2], 0u);
  EXPECT_EQ(m.row_ptr()[3], 1u);
  EXPECT_EQ(m.row_ptr()[5], 1u);
}

TEST(CsrProperty, OneByOne) {
  TripletBuilder b(1, 1);
  b.add(0, 0, 3.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.multiply(Vector{2.0}), (Vector{6.0}));
  EXPECT_EQ(m.multiply_transpose(Vector{2.0}), (Vector{6.0}));
  EXPECT_EQ(lower_triangular_solve(m, Vector{6.0}), (Vector{2.0}));
  EXPECT_EQ(upper_triangular_solve(m, Vector{6.0}), (Vector{2.0}));
}

/// Triangular solves agree with the dense reference: build L (or U) from a
/// diagonally-shifted random square matrix, compute b = T·x_ref densely,
/// solve, compare.
TEST(CsrProperty, TriangularSolvesMatchDense) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 11;
    const auto m = random_sparse({n, n}, 0.4, seed * 421);
    support::Rng rng(seed + 99);
    const Vector x_ref = random_vector(n, rng);

    for (const bool lower : {true, false}) {
      DenseMatrix t(n, n);
      TripletBuilder tb(n, n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          const bool keep = lower ? c < r : c > r;
          if (keep && m.dense(r, c) != 0.0) {
            t(r, c) = m.dense(r, c);
            tb.add(r, c, m.dense(r, c));
          }
        }
        t(r, r) = static_cast<double>(n);  // safely nonsingular diagonal
        tb.add(r, r, static_cast<double>(n));
      }
      const CsrMatrix tri = tb.build();
      const Vector b = t.multiply(x_ref);
      const Vector x =
          lower ? lower_triangular_solve(tri, b) : upper_triangular_solve(tri, b);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
    }
  }
}

/// The triangular solves ignore entries on the wrong side of the diagonal,
/// so passing the full matrix uses only its lower/upper part.
TEST(CsrProperty, TriangularSolveIgnoresOtherTriangle) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 2.0);
  b.add(0, 1, 7.0);  // ignored by lower solve
  b.add(1, 0, 1.0);
  b.add(1, 1, 4.0);
  const CsrMatrix m = b.build();
  const Vector x = lower_triangular_solve(m, Vector{2.0, 9.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  const Vector xu = upper_triangular_solve(m, Vector{16.0, 8.0});
  EXPECT_DOUBLE_EQ(xu[1], 2.0);
  EXPECT_DOUBLE_EQ(xu[0], 1.0);
}

TEST(SparsityPattern, FromPairsDeduplicatesAndFinds) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs = {
      {1, 2}, {0, 0}, {1, 2}, {2, 1}, {1, 0}};
  const SparsityPattern p = SparsityPattern::from_pairs(3, 3, pairs);
  EXPECT_EQ(p.nonzeros(), 4u);
  EXPECT_NE(p.find(0, 0), SparsityPattern::npos);
  EXPECT_NE(p.find(1, 0), SparsityPattern::npos);
  EXPECT_NE(p.find(1, 2), SparsityPattern::npos);
  EXPECT_EQ(p.find(0, 1), SparsityPattern::npos);
  EXPECT_EQ(p.find(2, 2), SparsityPattern::npos);
}

TEST(SparsityPattern, AssemblerMatchesTripletBuilder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    support::Rng rng(seed * 733);
    const std::size_t n = 10;
    std::vector<Triplet> triplets;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t e = 0; e < 40; ++e) {
      const auto r = static_cast<std::size_t>(rng.next_below(n));
      const auto c = static_cast<std::size_t>(rng.next_below(n));
      triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
      pairs.emplace_back(r, c);
    }

    TripletBuilder builder(n, n);
    for (const auto& t : triplets) builder.add(t.row, t.col, t.value);
    const CsrMatrix reference = builder.build();

    auto pattern = std::make_shared<SparsityPattern>(
        SparsityPattern::from_pairs(n, n, pairs));
    CsrAssembler assembler(pattern);
    for (const auto& t : triplets) assembler.add(t.row, t.col, t.value);
    const CsrMatrix assembled = assembler.matrix();

    // Same values everywhere (the assembler keeps structural entries that
    // TripletBuilder would drop if they summed to zero — compare values).
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        EXPECT_NEAR(assembled.value_at(r, c), reference.value_at(r, c), 1e-13);

    // Numeric refill over the same pattern: reset + scaled re-add.
    assembler.reset();
    for (const auto& t : triplets) assembler.add(t.row, t.col, 2.0 * t.value);
    const CsrMatrix doubled = assembler.matrix();
    EXPECT_EQ(doubled.pattern_ptr().get(), assembled.pattern_ptr().get());
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        EXPECT_NEAR(doubled.value_at(r, c), 2.0 * assembled.value_at(r, c),
                    1e-13);
  }
}

TEST(SparsityPattern, AddAtScattersByOffset) {
  auto pattern = std::make_shared<SparsityPattern>(SparsityPattern::from_pairs(
      2, 2, {{0, 0}, {0, 1}, {1, 1}}));
  CsrAssembler assembler(pattern);
  assembler.add_at(pattern->find(0, 1), 5.0);
  assembler.add_at(pattern->find(0, 1), 2.5);
  assembler.add_at(pattern->find(1, 1), 1.0);
  const CsrMatrix m = assembler.matrix();
  EXPECT_DOUBLE_EQ(m.value_at(0, 1), 7.5);
  EXPECT_DOUBLE_EQ(m.value_at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.value_at(0, 0), 0.0);  // structural zero retained
  EXPECT_EQ(m.nonzeros(), 3u);
}

/// Lane-partitioned SpMV must be bit-identical to the whole-matrix product
/// for any partition — the property the multi-threaded host backend relies
/// on to stay deterministic at every thread count.
TEST(CsrProperty, SpmvRowsPartitionIsBitIdentical) {
  const auto m = random_sparse({32, 32}, 0.3, 2024);
  support::Rng rng(7);
  const Vector x = random_vector(32, rng);
  const Vector whole = m.csr.multiply(x);

  for (const std::size_t lanes : {2u, 3u, 5u, 32u}) {
    Vector stitched(32, 0.0);
    const std::size_t chunk = (32 + lanes - 1) / lanes;
    for (std::size_t begin = 0; begin < 32; begin += chunk) {
      const std::size_t end = std::min<std::size_t>(begin + chunk, 32);
      std::span<double> slice(stitched.data() + begin, end - begin);
      m.csr.multiply_rows(x, begin, end, slice);
    }
    EXPECT_EQ(stitched, whole);  // bitwise, not approximate
  }
}

TEST(VecOpsKernels, XpayAndHadamard) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{10.0, 20.0, 30.0};
  xpay(x, 0.5, y);  // y = x + 0.5 y
  EXPECT_EQ(y, (Vector{6.0, 12.0, 18.0}));

  Vector z(3, 0.0);
  hadamard(x, y, z);
  EXPECT_EQ(z, (Vector{6.0, 24.0, 54.0}));
}

TEST(VecOpsKernels, DotIsDeterministicAcrossCalls) {
  support::Rng rng(99);
  const Vector a = random_vector(1001, rng);
  const Vector b = random_vector(1001, rng);
  const double d1 = dot(a, b);
  const double d2 = dot(a, b);
  EXPECT_EQ(d1, d2);
  // And consistent with a plain reference sum to rounding accuracy.
  double ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ref += a[i] * b[i];
  EXPECT_NEAR(d1, ref, 1e-10 * std::abs(ref) + 1e-12);
}

}  // namespace
}  // namespace fem2::la
