// fem2-db engine tests: WAL framing, torn-tail tolerance, optimistic
// concurrency, MVCC history, checkpoint/compaction — and the central
// crash-recovery property, proved by a deterministic crash-point sweep:
// truncate the log at EVERY byte boundary and show that recovery always
// yields exactly the committed prefix (no lost committed transaction, no
// resurrected aborted transaction, never a crash on a torn tail).
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "db/wal.hpp"

namespace fs = std::filesystem;
using namespace fem2;

namespace {

// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("fem2_db_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
  std::string str() const { return path.string(); }
};

db::EngineOptions options_for(const TempDir& dir) {
  db::EngineOptions options;
  options.directory = dir.str();
  return options;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct LiveObject {
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;
  bool operator==(const LiveObject&) const = default;
};

using StateMap = std::map<std::string, LiveObject>;

StateMap live_state(const db::Engine& engine) {
  StateMap out;
  for (const auto& entry : engine.list()) {
    const auto view = engine.get(entry.name);
    EXPECT_TRUE(view.has_value()) << entry.name;
    if (view) out[entry.name] = {view->kind, view->value, view->revision};
  }
  return out;
}

// ---------------------------------------------------------------------------
// WAL record framing

db::WalRecord sample_record() {
  db::WalRecord r;
  r.type = db::RecordType::Put;
  r.txn = 42;
  r.name = "bridge";
  r.kind = "model";
  r.value = std::string("payload with\nnewlines and \0 bytes", 33);
  r.revision = 7;
  return r;
}

TEST(Wal, RecordRoundTripAllTypes) {
  // Each type frames exactly the fields it carries: Put everything, Erase
  // name+revision, the transaction markers only the txn id.
  std::vector<db::WalRecord> inputs;
  inputs.push_back(sample_record());
  db::WalRecord erase;
  erase.type = db::RecordType::Erase;
  erase.txn = 42;
  erase.name = "bridge";
  erase.revision = 9;
  inputs.push_back(erase);
  for (const auto type : {db::RecordType::TxnBegin, db::RecordType::TxnCommit,
                          db::RecordType::TxnAbort}) {
    db::WalRecord marker;
    marker.type = type;
    marker.txn = 1234567890123ULL;
    inputs.push_back(marker);
  }
  for (const auto& in : inputs) {
    const std::string frame = db::encode_record(in);
    db::WalRecord out;
    std::size_t offset = 0;
    ASSERT_EQ(db::decode_record(frame, offset, out), db::DecodeStatus::Ok);
    EXPECT_EQ(offset, frame.size());
    EXPECT_EQ(in, out);
  }
}

TEST(Wal, EveryProperPrefixIsTruncatedNotCorrupt) {
  const std::string frame = db::encode_record(sample_record());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    db::WalRecord out;
    std::size_t offset = 0;
    EXPECT_EQ(db::decode_record(std::string_view(frame).substr(0, cut),
                                offset, out),
              db::DecodeStatus::Truncated)
        << "cut at " << cut;
  }
}

TEST(Wal, FlippedPayloadByteIsCorrupt) {
  const std::string frame = db::encode_record(sample_record());
  // Flip each payload byte in turn (skip the 8-byte header: a flipped
  // length field usually reads as Truncated instead, which is also safe).
  for (std::size_t i = 8; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    db::WalRecord out;
    std::size_t offset = 0;
    EXPECT_EQ(db::decode_record(bad, offset, out), db::DecodeStatus::Corrupt)
        << "flip at " << i;
  }
}

TEST(Wal, ReplayStopsAtGarbageTail) {
  TempDir dir("replay_tail");
  const fs::path log = dir.path / "wal.f2db";
  std::string bytes;
  std::vector<db::WalRecord> written;
  for (int i = 0; i < 5; ++i) {
    db::WalRecord r = sample_record();
    r.txn = static_cast<std::uint64_t>(i + 1);
    written.push_back(r);
    bytes += db::encode_record(r);
  }
  const std::uint64_t valid = bytes.size();
  bytes += "garbage that is not a frame";
  write_file(log, bytes);

  const db::ReplayResult replayed = db::Wal::replay(log.string());
  EXPECT_EQ(replayed.records, written);
  EXPECT_EQ(replayed.valid_bytes, valid);
  EXPECT_EQ(replayed.total_bytes, bytes.size());
  EXPECT_TRUE(replayed.torn_tail);
}

TEST(Wal, MissingFileIsEmptyLog) {
  const db::ReplayResult replayed = db::Wal::replay("/nonexistent/wal.f2db");
  EXPECT_TRUE(replayed.records.empty());
  EXPECT_EQ(replayed.total_bytes, 0u);
  EXPECT_FALSE(replayed.torn_tail);
}

// ---------------------------------------------------------------------------
// Engine semantics (memory mode — identical minus durability)

TEST(Engine, AutocommitPutGetEraseRevisions) {
  db::Engine engine;
  EXPECT_EQ(engine.put("a", "model", "v1"), 1u);
  EXPECT_EQ(engine.put("a", "model", "v2"), 2u);
  EXPECT_EQ(engine.revision_of("a"), 2u);
  EXPECT_EQ(engine.get("a")->value, "v2");
  EXPECT_TRUE(engine.erase("a"));
  EXPECT_FALSE(engine.contains("a"));
  EXPECT_EQ(engine.revision_of("a"), 0u);
  EXPECT_FALSE(engine.erase("a"));  // nothing to erase
  // Revisions continue through deletes — no ABA reuse.
  EXPECT_EQ(engine.put("a", "model", "v3"), 4u);
  EXPECT_EQ(engine.size(), 1u);
}

TEST(Engine, CompareAndSwapSemantics) {
  db::Engine engine;
  // expected = 0: must not exist.
  EXPECT_EQ(engine.put("a", "model", "v1", 0), 1u);
  EXPECT_THROW(engine.put("a", "model", "clobber", 0), db::ConflictError);
  // expected = N: must currently be at N.
  EXPECT_EQ(engine.put("a", "model", "v2", 1), 2u);
  try {
    engine.put("a", "model", "stale", 1);
    FAIL() << "expected ConflictError";
  } catch (const db::ConflictError& e) {
    EXPECT_EQ(e.name(), "a");
    EXPECT_EQ(e.expected(), 1u);
    EXPECT_EQ(e.actual(), 2u);
  }
  // CAS erase.
  EXPECT_THROW(engine.erase("a", 1), db::ConflictError);
  EXPECT_TRUE(engine.erase("a", 2));
  EXPECT_EQ(engine.stats().conflicts, 3u);
}

TEST(Engine, TransactionReadYourWritesAndAbort) {
  db::Engine engine;
  engine.put("a", "model", "committed");
  const std::uint64_t txn = engine.begin();
  engine.put(txn, "a", "model", "mine");
  engine.put(txn, "b", "model", "new");
  engine.erase(txn, "a");  // later buffered write wins inside the txn
  EXPECT_FALSE(engine.get(txn, "a").has_value());
  EXPECT_EQ(engine.get(txn, "b")->value, "new");
  // Other readers still see the committed state.
  EXPECT_EQ(engine.get("a")->value, "committed");
  EXPECT_FALSE(engine.contains("b"));
  engine.abort(txn);
  EXPECT_EQ(engine.get("a")->value, "committed");
  EXPECT_FALSE(engine.contains("b"));
  EXPECT_EQ(engine.stats().aborts, 1u);
}

TEST(Engine, ConflictAtCommitDropsTransaction) {
  db::Engine engine;
  engine.put("a", "model", "v1");
  const std::uint64_t txn = engine.begin();
  engine.put(txn, "a", "model", "stale-write", 1);
  engine.put(txn, "b", "model", "never-applied");
  engine.put("a", "model", "v2");  // somebody else got there first
  EXPECT_THROW(engine.commit(txn), db::ConflictError);
  // All-or-nothing: no write of the conflicted txn is visible.
  EXPECT_EQ(engine.get("a")->value, "v2");
  EXPECT_FALSE(engine.contains("b"));
  // The transaction is gone.
  EXPECT_THROW(engine.commit(txn), db::Error);
}

TEST(Engine, MvccHistoryAndGetAt) {
  db::EngineOptions options;
  options.history_limit = 3;
  db::Engine engine(options);
  engine.put("a", "model", "v1");
  engine.put("a", "model", "v2");
  engine.erase("a");
  engine.put("a", "results", "v4");

  const auto history = engine.history("a");
  ASSERT_EQ(history.size(), 3u);  // bounded window; v1 trimmed
  EXPECT_EQ(history[0].revision, 2u);
  EXPECT_TRUE(history[1].deleted);
  EXPECT_EQ(history[2].revision, 4u);
  EXPECT_EQ(history[2].kind, "results");

  EXPECT_EQ(engine.get_at("a", 2)->value, "v2");
  EXPECT_FALSE(engine.get_at("a", 3).has_value());  // a delete marker
  EXPECT_FALSE(engine.get_at("a", 1).has_value());  // trimmed out
  EXPECT_EQ(engine.get_at("a", 4)->value, "v4");
}

TEST(Engine, ConcurrentCasStoresNeverLoseWrites) {
  db::Engine engine;
  constexpr int kThreads = 8;
  constexpr int kStoresPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      for (int i = 0; i < kStoresPerThread; ++i) {
        for (;;) {
          const std::uint64_t rev = engine.revision_of("hot");
          try {
            engine.put("hot", "model",
                       "t" + std::to_string(t) + "i" + std::to_string(i),
                       rev);
            break;
          } catch (const db::ConflictError&) {
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(engine.revision_of("hot"),
            static_cast<std::uint64_t>(kThreads * kStoresPerThread));
}

// ---------------------------------------------------------------------------
// Durability and recovery

TEST(Recovery, ReopenSeesCommittedState) {
  TempDir dir("reopen");
  StateMap before;
  {
    db::Engine engine(options_for(dir));
    engine.put("bridge", "model", "payload-1");
    engine.put("bridge", "model", "payload-2");
    const std::uint64_t txn = engine.begin();
    engine.put(txn, "mast", "model", "payload-3");
    engine.erase(txn, "bridge");
    engine.commit(txn);
    const std::uint64_t open = engine.begin();
    engine.put(open, "ghost", "model", "uncommitted");
    before = live_state(engine);
    // `open` is never committed: the destructor discards it.
  }
  db::Engine reopened(options_for(dir));
  EXPECT_EQ(live_state(reopened), before);
  EXPECT_FALSE(reopened.contains("ghost"));
  EXPECT_EQ(reopened.stats().recovered_txns, 3u);
  // Per-object revision counters must continue, not restart.
  EXPECT_EQ(reopened.put("mast", "model", "payload-4"), 2u);
}

TEST(Recovery, CheckpointCompactsLogAndSurvivesReopen) {
  TempDir dir("checkpoint");
  StateMap before;
  {
    db::Engine engine(options_for(dir));
    for (int i = 0; i < 10; ++i)
      engine.put("n" + std::to_string(i), "model", std::string(100, 'x'));
    const std::uint64_t wal_before = engine.stats().wal_bytes;
    engine.checkpoint();
    EXPECT_GT(wal_before, 0u);
    EXPECT_EQ(engine.stats().wal_bytes, 0u);  // log truncated
    EXPECT_EQ(engine.stats().checkpoints, 1u);
    engine.put("after", "model", "post-checkpoint");  // lands in new log
    before = live_state(engine);
  }
  db::Engine reopened(options_for(dir));
  EXPECT_EQ(live_state(reopened), before);
  EXPECT_TRUE(reopened.stats().recovered_snapshot);
  EXPECT_EQ(reopened.stats().recovered_txns, 1u);  // only "after"
}

TEST(Recovery, AutoCheckpointTriggersOnLogGrowth) {
  TempDir dir("autockpt");
  db::EngineOptions options = options_for(dir);
  options.compact_after_bytes = 512;
  db::Engine engine(options);
  for (int i = 0; i < 50; ++i)
    engine.put("n", "model", std::string(64, static_cast<char>('a' + i % 26)));
  EXPECT_GE(engine.stats().checkpoints, 1u);
  EXPECT_LT(engine.stats().wal_bytes, 512u + 256u);
}

TEST(Recovery, TornTailIsShearedAndAppendsContinue) {
  TempDir dir("shear");
  const fs::path log = dir.path / "wal.f2db";
  {
    db::Engine engine(options_for(dir));
    engine.put("a", "model", "v1");
    engine.put("b", "model", "v2");
  }
  // Simulate a crash mid-append: chop the last record in half.
  std::string bytes = read_file(log);
  write_file(log, std::string_view(bytes).substr(0, bytes.size() - 7));
  {
    db::Engine engine(options_for(dir));
    EXPECT_EQ(engine.get("a")->value, "v1");
    EXPECT_FALSE(engine.contains("b"));  // its commit never hit the disk
    EXPECT_GT(engine.stats().recovery_discarded_bytes, 0u);
    engine.put("c", "model", "v3");  // appends go after the sheared tail
  }
  db::Engine engine(options_for(dir));
  EXPECT_EQ(engine.get("a")->value, "v1");
  EXPECT_EQ(engine.get("c")->value, "v3");
  EXPECT_FALSE(engine.contains("b"));
}

// ---------------------------------------------------------------------------
// The crash-point sweep: the acceptance property of fem2-db.
//
// Run a scripted transaction mix (commits, aborts, a conflict, an erase),
// recording the database state and the WAL length at every commit point.
// Then, for EVERY byte boundary L of the finished log, start a recovery
// from a copy truncated to L and require that the recovered state equals
// exactly the state at the last commit point <= L:
//
//   * zero lost committed transactions (everything before L survives),
//   * zero resurrected aborted transactions (aborted payloads are tagged
//     and must never appear),
//   * zero partial transactions (a torn commit is invisible),
//   * recovery never fails, whatever the cut.

TEST(Recovery, CrashPointSweepEveryByteBoundary) {
  TempDir dir("sweep_src");
  db::EngineOptions options = options_for(dir);
  options.compact_after_bytes = 0;  // keep every record in the log
  options.sync_on_commit = false;   // the sweep reads file bytes, not disk

  // (wal length after commit) -> expected state; the empty log maps to {}.
  std::vector<std::pair<std::uint64_t, StateMap>> commit_points;
  commit_points.emplace_back(0, StateMap{});
  {
    db::Engine engine(options);
    const auto mark = [&] {
      commit_points.emplace_back(engine.stats().wal_bytes,
                                 live_state(engine));
    };

    // txn 1: two puts, committed.
    std::uint64_t txn = engine.begin();
    engine.put(txn, "a", "model", "a-v1");
    engine.put(txn, "b", "model", "b-v1");
    engine.commit(txn);
    mark();

    // txn 2: aborted — must NEVER be visible at any cut.
    txn = engine.begin();
    engine.put(txn, "a", "model", "ABORTED-a");
    engine.put(txn, "c", "model", "ABORTED-c");
    engine.abort(txn);

    // autocommit put.
    engine.put("c", "model", "c-v1");
    mark();

    // txn 3: CAS update + erase, committed.
    txn = engine.begin();
    engine.put(txn, "a", "model", "a-v2", engine.revision_of("a"));
    engine.erase(txn, "b");
    engine.commit(txn);
    mark();

    // txn 4: conflicted at commit — also must never be visible.
    txn = engine.begin();
    engine.put(txn, "c", "model", "ABORTED-conflict", 1);
    engine.put("c", "model", "c-v2");  // bump past the expectation
    mark();
    EXPECT_THROW(engine.commit(txn), db::ConflictError);

    // txn 5: re-create the erased name, plus a fresh one.
    txn = engine.begin();
    engine.put(txn, "b", "model", "b-v2", 0);
    engine.put(txn, "d", "results", "d-v1");
    engine.commit(txn);
    mark();
  }

  const std::string log = read_file(dir.path / "wal.f2db");
  ASSERT_EQ(log.size(), commit_points.back().first);
  ASSERT_GT(log.size(), 0u);

  TempDir scratch("sweep_cut");
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    // Fresh directory holding the log truncated at `cut` — the on-disk
    // image a crash at that byte would leave behind.
    const fs::path crash_dir = scratch.path / std::to_string(cut);
    fs::create_directories(crash_dir);
    write_file(crash_dir / "wal.f2db", std::string_view(log).substr(0, cut));

    const StateMap* expected = &commit_points.front().second;
    for (const auto& [bytes, state] : commit_points)
      if (bytes <= cut) expected = &state;

    db::EngineOptions crash_options;
    crash_options.directory = crash_dir.string();
    db::Engine recovered(crash_options);
    const StateMap actual = live_state(recovered);
    ASSERT_EQ(actual, *expected) << "cut at byte " << cut;
    for (const auto& [name, object] : actual) {
      ASSERT_EQ(object.value.find("ABORTED"), std::string::npos)
          << "aborted write resurrected at cut " << cut << ": " << name;
    }
    fs::remove_all(crash_dir);
  }
}

// Same property with a snapshot in front: the sweep only ever loses what
// the post-checkpoint log held; the checkpointed state is inviolable.
TEST(Recovery, CrashPointSweepAfterCheckpoint) {
  TempDir dir("sweep_ckpt");
  db::EngineOptions options = options_for(dir);
  options.compact_after_bytes = 0;
  options.sync_on_commit = false;

  std::vector<std::pair<std::uint64_t, StateMap>> commit_points;
  {
    db::Engine engine(options);
    engine.put("base", "model", "base-v1");
    engine.put("gone", "model", "temporary");
    engine.checkpoint();
    commit_points.emplace_back(0, live_state(engine));

    engine.put("base", "model", "base-v2");
    commit_points.emplace_back(engine.stats().wal_bytes,
                               live_state(engine));
    engine.erase("gone");
    commit_points.emplace_back(engine.stats().wal_bytes,
                               live_state(engine));
  }

  const std::string log = read_file(dir.path / "wal.f2db");
  const std::string snapshot = read_file(dir.path / "snapshot.f2db");
  ASSERT_GT(log.size(), 0u);
  ASSERT_GT(snapshot.size(), 0u);

  TempDir scratch("sweep_ckpt_cut");
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    const fs::path crash_dir = scratch.path / std::to_string(cut);
    fs::create_directories(crash_dir);
    write_file(crash_dir / "snapshot.f2db", snapshot);
    write_file(crash_dir / "wal.f2db", std::string_view(log).substr(0, cut));

    const StateMap* expected = &commit_points.front().second;
    for (const auto& [bytes, state] : commit_points)
      if (bytes <= cut) expected = &state;

    db::EngineOptions crash_options;
    crash_options.directory = crash_dir.string();
    db::Engine recovered(crash_options);
    EXPECT_TRUE(recovered.stats().recovered_snapshot);
    ASSERT_EQ(live_state(recovered), *expected) << "cut at byte " << cut;
    fs::remove_all(crash_dir);
  }
}

}  // namespace
