// Storage fault-injection tests: the Vfs boundary, the deterministic
// FaultVfs, WAL append self-healing, fail-safe degraded mode, retry
// scheduling — and the central robustness property, proved by an
// operation-level fault sweep: for EVERY write/fsync/rename/truncate/
// dir_sync index a deterministic workload issues (commit and checkpoint
// paths included), inject a failure there, crash to the durable image,
// recover, and show the store holds exactly the acknowledged commits —
// nothing lost, nothing resurrected, no fsync-gate.
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "db/iofault.hpp"
#include "db/retry.hpp"
#include "db/snapshot.hpp"
#include "db/wal.hpp"

namespace fs = std::filesystem;
using namespace fem2;

namespace {

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("fem2_iofault_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
  std::string str() const { return path.string(); }
};

db::EngineOptions options_for(const TempDir& dir) {
  db::EngineOptions options;
  options.directory = dir.str();
  return options;
}

db::EngineOptions faulted_options(const TempDir& dir,
                                  std::shared_ptr<db::Vfs> vfs) {
  db::EngineOptions options;
  options.directory = dir.str();
  options.compact_after_bytes = 0;  // checkpoints only where the test says
  options.vfs = std::move(vfs);
  return options;
}

std::string read_raw(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct LiveObject {
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;
  bool operator==(const LiveObject&) const = default;
};

using StateMap = std::map<std::string, LiveObject>;

StateMap live_state(const db::Engine& engine) {
  StateMap out;
  for (const auto& entry : engine.list()) {
    const auto view = engine.get(entry.name);
    EXPECT_TRUE(view.has_value()) << entry.name;
    if (view) out[entry.name] = {view->kind, view->value, view->revision};
  }
  return out;
}

// ---------------------------------------------------------------------------
// Vfs basics

TEST(Vfs, PosixRoundTrip) {
  TempDir dir("posix");
  auto& vfs = *db::Vfs::posix();
  const std::string path = dir.str() + "/file.bin";

  EXPECT_FALSE(vfs.read_file(path).has_value());

  {
    auto file = vfs.create_truncate(path);
    file->write_all("hello ");
    file->write_all("world");
    file->sync();
    EXPECT_EQ(file->size(), 11u);
  }
  EXPECT_EQ(vfs.read_file(path).value(), "hello world");

  {
    auto file = vfs.open_append(path);
    file->write_all("!");
  }
  EXPECT_EQ(vfs.read_file(path).value(), "hello world!");

  {
    auto file = vfs.open_append(path);
    file->truncate(5);
    file->write_all("!");
  }
  EXPECT_EQ(vfs.read_file(path).value(), "hello!");

  const std::string moved = dir.str() + "/moved.bin";
  vfs.rename(path, moved);
  vfs.dir_sync(dir.str());
  EXPECT_FALSE(vfs.read_file(path).has_value());
  EXPECT_EQ(vfs.read_file(moved).value(), "hello!");
}

TEST(Vfs, IoErrorCarriesOpPathAndErrno) {
  const db::IoError error(db::IoOp::Fsync, "/data/wal.f2db", EIO);
  EXPECT_EQ(error.op(), db::IoOp::Fsync);
  EXPECT_EQ(error.path(), "/data/wal.f2db");
  EXPECT_EQ(error.code(), EIO);
  EXPECT_FALSE(error.transient());
  EXPECT_NE(std::string(error.what()).find("fsync"), std::string::npos);
  EXPECT_NE(std::string(error.what()).find("/data/wal.f2db"),
            std::string::npos);

  EXPECT_TRUE(db::IoError(db::IoOp::Write, "x", EINTR).transient());
  EXPECT_TRUE(db::IoError(db::IoOp::Write, "x", EAGAIN).transient());
  EXPECT_FALSE(db::IoError(db::IoOp::Write, "x", ENOSPC).transient());
}

TEST(Vfs, ParentDirectory) {
  EXPECT_EQ(db::parent_directory("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(db::parent_directory("c.txt"), ".");
}

// ---------------------------------------------------------------------------
// FaultVfs: deterministic fault firing

TEST(FaultVfs, FailsTheNthWriteWithTheChosenErrno) {
  TempDir dir("nth_write");
  db::IoFaultPlan plan;
  plan.fail(db::IoOp::Write, 1, ENOSPC);
  auto vfs = std::make_shared<db::FaultVfs>(plan);

  auto file = vfs->create_truncate(dir.str() + "/f");
  file->write_all("first");  // write #0 passes
  try {
    file->write_all("second");  // write #1 fires
    FAIL() << "expected IoError";
  } catch (const db::IoError& e) {
    EXPECT_EQ(e.op(), db::IoOp::Write);
    EXPECT_EQ(e.code(), ENOSPC);
  }
  file->write_all("third");  // write #2 passes again
  EXPECT_EQ(vfs->faults_fired(), 1u);
  EXPECT_EQ(vfs->counts().write, 3u);
}

TEST(FaultVfs, ShortWritesAreAbsorbedByWriteAll) {
  TempDir dir("short_write");
  db::IoFaultPlan plan;
  plan.short_write(0, 3);
  auto vfs = std::make_shared<db::FaultVfs>(plan);

  auto file = vfs->create_truncate(dir.str() + "/f");
  file->write_all("0123456789");  // first write_some transfers only 3
  EXPECT_EQ(db::Vfs::posix()->read_file(dir.str() + "/f").value(),
            "0123456789");
  EXPECT_GE(vfs->counts().write, 2u);
  EXPECT_EQ(vfs->faults_fired(), 1u);
}

TEST(FaultVfs, EnospcAfterBudgetExhausted) {
  TempDir dir("enospc");
  db::IoFaultPlan plan;
  plan.enospc_after(8);
  auto vfs = std::make_shared<db::FaultVfs>(plan);

  auto file = vfs->create_truncate(dir.str() + "/f");
  file->write_all("12345678");  // exactly the budget
  try {
    file->write_all("x");
    FAIL() << "expected ENOSPC";
  } catch (const db::IoError& e) {
    EXPECT_EQ(e.code(), ENOSPC);
  }
}

TEST(FaultVfs, CrashLosesUnsyncedTailKeepsSyncedPrefix) {
  TempDir dir("durable");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string path = dir.str() + "/f";
  {
    auto file = vfs->create_truncate(path);
    file->write_all("durable|");
    file->sync();
    file->write_all("lost");
  }
  vfs->crash_to_durable();
  EXPECT_EQ(read_raw(path), "durable|");
}

TEST(FaultVfs, LyingFsyncPersistsNothing) {
  TempDir dir("lying");
  db::IoFaultPlan plan;
  plan.lying_fsync(0);
  auto vfs = std::make_shared<db::FaultVfs>(plan);
  const std::string path = dir.str() + "/f";
  {
    auto file = vfs->create_truncate(path);
    file->write_all("gone after crash");
    file->sync();  // reports success, moves nothing to stable storage
  }
  vfs->crash_to_durable();
  EXPECT_EQ(read_raw(path), "");
}

TEST(FaultVfs, CrashKeepsTornFragmentWhenAsked) {
  TempDir dir("torn");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string path = dir.str() + "/f";
  {
    auto file = vfs->create_truncate(path);
    file->write_all("ok|");
    file->sync();
    file->write_all("tornbytes");
  }
  vfs->crash_to_durable(4);
  EXPECT_EQ(read_raw(path), "ok|torn");
}

TEST(FaultVfs, CrashUndoesRenameNotCoveredByDirSync) {
  TempDir dir("rename");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string tmp = dir.str() + "/snap.tmp";
  const std::string final = dir.str() + "/snap";
  {
    auto old_snap = vfs->create_truncate(final);
    old_snap->write_all("old");
    old_snap->sync();
  }
  vfs->dir_sync(dir.str());
  {
    auto new_snap = vfs->create_truncate(tmp);
    new_snap->write_all("new");
    new_snap->sync();
  }
  vfs->rename(tmp, final);
  // No dir_sync: the publish is not durable yet.
  vfs->crash_to_durable();
  EXPECT_EQ(read_raw(final), "old");
  EXPECT_EQ(read_raw(tmp), "new");
}

TEST(FaultVfs, DirSyncMakesRenameSurviveCrash) {
  TempDir dir("rename_synced");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string tmp = dir.str() + "/snap.tmp";
  const std::string final = dir.str() + "/snap";
  {
    auto file = vfs->create_truncate(tmp);
    file->write_all("new");
    file->sync();
  }
  vfs->rename(tmp, final);
  vfs->dir_sync(dir.str());
  vfs->crash_to_durable();
  EXPECT_EQ(read_raw(final), "new");
  EXPECT_FALSE(fs::exists(tmp));
}

TEST(IoFaultPlan, RandomFsyncFailuresAreDeterministic) {
  const auto a = db::IoFaultPlan::random_fsync_failures(5, 100, 7);
  const auto b = db::IoFaultPlan::random_fsync_failures(5, 100, 7);
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.faults()[i].nth, b.faults()[i].nth);
    EXPECT_EQ(a.faults()[i].op, db::IoOp::Fsync);
    EXPECT_LT(a.faults()[i].nth, 100u);
  }
  const auto c = db::IoFaultPlan::random_fsync_failures(5, 100, 8);
  bool same = true;
  for (std::size_t i = 0; i < a.size(); ++i)
    same = same && a.faults()[i].nth == c.faults()[i].nth;
  EXPECT_FALSE(same) << "different seeds picked identical fault indices";
}

// ---------------------------------------------------------------------------
// WAL append self-healing

TEST(Wal, FailedAppendShearsItsPartialFrame) {
  TempDir dir("wal_shear");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string path = dir.str() + "/wal.f2db";
  db::Wal wal(vfs, path);

  db::WalRecord record;
  record.type = db::RecordType::Put;
  record.txn = 1;
  record.name = "alpha";
  record.kind = "blob";
  record.value = std::string(100, 'v');
  record.revision = 1;
  wal.append(record);
  const std::uint64_t good = wal.bytes();

  // The next frame tears mid-write: 3 bytes land, then EIO.
  db::IoFaultPlan plan;
  plan.short_write(vfs->counts().write, 3);
  plan.fail(db::IoOp::Write, vfs->counts().write + 1, EIO);
  vfs->set_plan(plan);
  record.revision = 2;
  EXPECT_THROW(wal.append(record), db::IoError);

  // Counters and the file agree again: the partial frame is gone.
  EXPECT_EQ(wal.bytes(), good);
  EXPECT_FALSE(wal.torn());
  EXPECT_EQ(db::Vfs::posix()->read_file(path)->size(), good);

  vfs->set_plan({});
  record.revision = 3;
  wal.append(record);
  const auto replayed = db::Wal::replay(path);
  ASSERT_EQ(replayed.records.size(), 2u);
  EXPECT_EQ(replayed.records[0].revision, 1u);
  EXPECT_EQ(replayed.records[1].revision, 3u);
  EXPECT_FALSE(replayed.torn_tail);
}

TEST(Wal, ShearFailureMarksTheLogTorn) {
  TempDir dir("wal_torn");
  auto vfs = std::make_shared<db::FaultVfs>();
  const std::string path = dir.str() + "/wal.f2db";
  db::Wal wal(vfs, path);

  db::WalRecord record;
  record.type = db::RecordType::TxnBegin;
  record.txn = 1;
  wal.append(record);

  // Both the append and the recovery truncate fail.
  db::IoFaultPlan plan;
  plan.short_write(vfs->counts().write, 2);
  plan.fail(db::IoOp::Write, vfs->counts().write + 1, EIO);
  plan.fail(db::IoOp::Truncate, vfs->counts().truncate, EIO);
  vfs->set_plan(plan);
  EXPECT_THROW(wal.append(record), db::IoError);
  EXPECT_TRUE(wal.torn());

  // truncate_to (the engine's rollback) clears the flag when it succeeds.
  vfs->set_plan({});
  wal.truncate_to(wal.bytes(), wal.records());
  EXPECT_FALSE(wal.torn());
}

// ---------------------------------------------------------------------------
// Snapshot directory durability (the silently-ignored failure, fixed)

TEST(Snapshot, DirSyncFailureSurfacesAsIoError) {
  TempDir dir("snap_dirsync");
  db::IoFaultPlan plan;
  plan.fail(db::IoOp::DirSync, 0, EIO);
  auto vfs = std::make_shared<db::FaultVfs>(plan);

  db::SnapshotData data;
  data.next_txn = 5;
  const std::string path = dir.str() + "/snapshot.f2db";
  try {
    db::write_snapshot(*vfs, path, data);
    FAIL() << "expected IoError from the directory fsync";
  } catch (const db::IoError& e) {
    EXPECT_EQ(e.op(), db::IoOp::DirSync);
  }

  // And the failure is honest: a crash now really can lose the publish.
  vfs->crash_to_durable();
  EXPECT_FALSE(db::Vfs::posix()->read_file(path).has_value());
}

// ---------------------------------------------------------------------------
// Engine failure classification

TEST(Engine, EnospcFailsCommitsCleanlyWithoutDegrading) {
  TempDir dir("engine_enospc");
  auto vfs = std::make_shared<db::FaultVfs>();
  db::Engine engine(faulted_options(dir, vfs));
  const auto rev = engine.put("alpha", "blob", "kept");
  ASSERT_EQ(rev, 1u);

  db::IoFaultPlan plan;
  plan.enospc_after(1);  // effectively a full disk from here on
  vfs->set_plan(plan);

  // Every commit fails cleanly; the engine never degrades, because the
  // rollback leaves the log exactly as before each attempt.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(engine.put("beta", "blob", "never"), db::IoError);
    EXPECT_FALSE(engine.degraded());
  }
  EXPECT_EQ(engine.stats().io_errors, 3u);
  EXPECT_EQ(engine.get("alpha")->value, "kept");
  EXPECT_FALSE(engine.contains("beta"));

  // Space returns; writes work again without any recovery step.
  vfs->set_plan({});
  EXPECT_EQ(engine.put("beta", "blob", "now"), 1u);
}

TEST(Engine, FsyncFailureEntersStickyDegradedMode) {
  TempDir dir("engine_degraded");
  auto vfs = std::make_shared<db::FaultVfs>();
  db::Engine engine(faulted_options(dir, vfs));
  engine.put("alpha", "blob", "v1");
  engine.put("beta", "blob", "v1");
  const StateMap committed = live_state(engine);

  db::IoFaultPlan plan;
  plan.fail(db::IoOp::Fsync, vfs->counts().fsync, EIO);
  vfs->set_plan(plan);
  EXPECT_THROW(engine.put("alpha", "blob", "v2"), db::IoError);

  EXPECT_TRUE(engine.degraded());
  EXPECT_EQ(engine.state().mode, "degraded");
  EXPECT_EQ(engine.stats().degraded_entries, 1u);

  // Sticky: clearing the fault does not clear the mode...
  vfs->set_plan({});
  EXPECT_THROW(engine.put("alpha", "blob", "v3"), db::DegradedError);
  EXPECT_THROW(engine.begin(), db::DegradedError);
  EXPECT_THROW(engine.erase("beta"), db::DegradedError);
  EXPECT_THROW(engine.checkpoint(), db::DegradedError);

  // ...while reads and history keep serving.
  EXPECT_EQ(live_state(engine), committed);
  EXPECT_EQ(engine.history("alpha").size(), 1u);
  EXPECT_EQ(engine.revision_of("beta"), 1u);

  // recover() is the only exit: re-open from durable state.
  engine.recover();
  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.state().mode, "persistent");
  EXPECT_EQ(engine.stats().recoveries, 1u);
  EXPECT_EQ(live_state(engine), committed);
  EXPECT_EQ(engine.put("alpha", "blob", "v2"), 2u);
}

TEST(Engine, NoFsyncGateTheFailedCommitNeverBecomesDurable) {
  TempDir dir("fsync_gate");
  auto vfs = std::make_shared<db::FaultVfs>();
  StateMap committed;
  {
    db::Engine engine(faulted_options(dir, vfs));
    engine.put("alpha", "blob", "v1");
    committed = live_state(engine);

    db::IoFaultPlan plan;
    plan.fail(db::IoOp::Fsync, vfs->counts().fsync, EIO);
    vfs->set_plan(plan);
    EXPECT_THROW(engine.put("alpha", "blob", "FAILED-COMMIT"), db::IoError);
    vfs->set_plan({});

    // The gate scenario: were the engine to accept this next commit, its
    // fsync would durably publish the failed one too.  Degraded mode
    // refuses it.
    EXPECT_THROW(engine.put("beta", "blob", "would-publish-the-ghost"),
                 db::DegradedError);
  }
  vfs->crash_to_durable();
  db::Engine reopened(options_for(dir));
  EXPECT_EQ(live_state(reopened), committed);
}

TEST(Engine, LyingFsyncAckedCommitVanishesAtCrashButPrefixHolds) {
  TempDir dir("lying_engine");
  db::IoFaultPlan plan;
  auto vfs = std::make_shared<db::FaultVfs>();
  {
    db::Engine engine(faulted_options(dir, vfs));
    engine.put("alpha", "blob", "durable");
    // The second commit's fsync lies: the engine acks it in good faith.
    db::IoFaultPlan lying;
    lying.lying_fsync(vfs->counts().fsync);
    vfs->set_plan(lying);
    EXPECT_EQ(engine.put("beta", "blob", "acked-but-lost"), 1u);
    EXPECT_FALSE(engine.degraded());  // the lie is invisible until a crash
  }
  vfs->crash_to_durable();
  // The lost commit disappears whole; the earlier prefix survives whole.
  db::Engine reopened(options_for(dir));
  EXPECT_EQ(reopened.get("alpha")->value, "durable");
  EXPECT_FALSE(reopened.contains("beta"));
}

TEST(Engine, SnapshotPhaseCheckpointFailureKeepsEngineHealthy) {
  TempDir dir("ckpt_snapshot_fail");
  auto vfs = std::make_shared<db::FaultVfs>();
  db::Engine engine(faulted_options(dir, vfs));
  engine.put("alpha", "blob", "v1");

  db::IoFaultPlan plan;
  plan.fail(db::IoOp::Rename, 0, EIO);  // the snapshot publish step
  vfs->set_plan(plan);
  EXPECT_THROW(engine.checkpoint(), db::IoError);
  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.stats().checkpoint_failures, 1u);
  EXPECT_EQ(engine.stats().checkpoints, 0u);

  // Commits keep flowing; the next checkpoint succeeds.
  vfs->set_plan({});
  engine.put("alpha", "blob", "v2");
  engine.checkpoint();
  EXPECT_EQ(engine.stats().checkpoints, 1u);
}

TEST(Engine, CrashBetweenSnapshotPublishAndLogResetReplaysOnce) {
  TempDir dir("ckpt_publish_no_reset");
  auto vfs = std::make_shared<db::FaultVfs>();
  StateMap committed;
  std::vector<db::VersionInfo> alpha_history;
  {
    db::Engine engine(faulted_options(dir, vfs));
    engine.put("alpha", "blob", "v1");
    engine.put("alpha", "blob", "v2");
    engine.put("beta", "blob", "b1");
    committed = live_state(engine);
    alpha_history = engine.history("alpha");

    // The checkpoint publishes its snapshot (tmp + rename + dir_sync all
    // succeed) and then fails to truncate the log — the exact window the
    // replay idempotence guard exists for.
    db::IoFaultPlan plan;
    plan.fail(db::IoOp::Truncate, vfs->counts().truncate, EIO);
    vfs->set_plan(plan);
    EXPECT_THROW(engine.checkpoint(), db::IoError);
    EXPECT_TRUE(engine.degraded());
    EXPECT_EQ(engine.stats().checkpoint_failures, 1u);
  }
  vfs->crash_to_durable();

  // Recovery sees the NEW snapshot plus the FULL old log; every log
  // record is already in the snapshot and must be applied zero times.
  db::Engine reopened(options_for(dir));
  EXPECT_EQ(live_state(reopened), committed);
  const auto replayed_history = reopened.history("alpha");
  ASSERT_EQ(replayed_history.size(), alpha_history.size());
  for (std::size_t i = 0; i < replayed_history.size(); ++i)
    EXPECT_EQ(replayed_history[i].revision, alpha_history[i].revision);
}

// ---------------------------------------------------------------------------
// The operation-level fault sweep

constexpr const char* kObjects[3] = {"alpha", "beta", "gamma"};

/// Deterministic workload mixing autocommit puts, erases, an explicit
/// checkpoint and a multi-write transaction.  Every ACKNOWLEDGED commit
/// updates `acked`; failed ones must leave no durable trace.  Returns
/// normally even when the engine degrades mid-way.
void run_workload(db::Engine& engine, StateMap& acked) {
  for (int step = 0; step < 12; ++step) {
    const std::string name = kObjects[step % 3];
    const std::string value =
        "v" + std::to_string(step) + "-" + std::string(48, 'x');
    try {
      const auto rev = engine.put(name, "blob", value);
      acked[name] = {"blob", value, rev};
    } catch (const db::Error&) {
    }
    if (step == 7) {
      const std::string victim = kObjects[2];
      try {
        if (engine.erase(victim)) acked.erase(victim);
      } catch (const db::Error&) {
      }
    }
    if (step == 5 || step == 9) {
      try {
        engine.checkpoint();
      } catch (const db::Error&) {
      }
    }
  }
  try {
    const auto txn = engine.begin();
    engine.put(txn, "alpha", "blob", "txn-a");
    engine.put(txn, "beta", "blob", "txn-b");
    engine.commit(txn);
    acked["alpha"] = {"blob", "txn-a", engine.revision_of("alpha")};
    acked["beta"] = {"blob", "txn-b", engine.revision_of("beta")};
  } catch (const db::Error&) {
  }
}

TEST(FaultSweep, EveryOpIndexRecoversToExactlyTheAckedPrefix) {
  // Pass 1: a clean run counts the operations the workload issues (and
  // proves the workload itself recovers cleanly).
  db::IoOpCounts counts;
  {
    TempDir dir("sweep_count");
    auto vfs = std::make_shared<db::FaultVfs>();
    StateMap acked;
    {
      db::Engine engine(faulted_options(dir, vfs));
      run_workload(engine, acked);
      EXPECT_FALSE(engine.degraded());
    }
    counts = vfs->counts();
    db::Engine reopened(options_for(dir));
    EXPECT_EQ(live_state(reopened), acked);
  }
  ASSERT_GT(counts.write, 0u);
  ASSERT_GT(counts.fsync, 0u);
  ASSERT_GT(counts.rename, 0u);
  ASSERT_GT(counts.truncate, 0u);
  ASSERT_GT(counts.dir_sync, 0u);

  // Pass 2: fail every one of those operations, one run per fault.
  const db::IoOp kinds[] = {db::IoOp::Write, db::IoOp::Fsync,
                            db::IoOp::Rename, db::IoOp::Truncate,
                            db::IoOp::DirSync};
  for (const auto op : kinds) {
    for (std::uint64_t nth = 0; nth < counts.of(op); ++nth) {
      SCOPED_TRACE(std::string("fault: fail ") + db::io_op_name(op) + " #" +
                   std::to_string(nth));
      TempDir dir("sweep_run");
      db::IoFaultPlan plan;
      plan.fail(op, nth, EIO);
      auto vfs = std::make_shared<db::FaultVfs>(plan);
      StateMap acked;
      {
        db::Engine engine(faulted_options(dir, vfs));
        run_workload(engine, acked);
        if (engine.degraded()) {
          vfs->set_plan({});
          // Degraded is sticky and read-only until recover()...
          EXPECT_THROW(engine.put("alpha", "blob", "refused"),
                       db::DegradedError);
          EXPECT_EQ(live_state(engine), acked);
          // ...and recover() restores exactly the acked commits and
          // makes the engine writable again.
          engine.recover();
          EXPECT_FALSE(engine.degraded());
          EXPECT_EQ(live_state(engine), acked);
          const auto rev = engine.put("post", "blob", "after-recover");
          acked["post"] = {"blob", "after-recover", rev};
        }
      }
      // Power loss: only the durable image survives.  Recovery must
      // yield the acknowledged commits — all of them, none extra.
      vfs->crash_to_durable();
      db::Engine reopened(options_for(dir));
      EXPECT_EQ(live_state(reopened), acked);
      EXPECT_FALSE(reopened.degraded());
    }
  }
}

// ---------------------------------------------------------------------------
// Retry scheduling

TEST(Retry, ScheduleIsDeterministicPerSeed) {
  db::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.jitter = 0.5;
  policy.seed = 1234;

  std::vector<std::int64_t> first;
  {
    db::RetrySchedule schedule(policy);
    while (const auto delay = schedule.next_delay())
      first.push_back(delay->count());
  }
  ASSERT_EQ(first.size(), policy.max_attempts - 1);
  db::RetrySchedule again(policy);
  for (const auto expected : first)
    EXPECT_EQ(again.next_delay()->count(), expected);

  policy.seed = 4321;
  db::RetrySchedule other(policy);
  bool identical = true;
  for (const auto expected : first)
    identical = identical && other.next_delay()->count() == expected;
  EXPECT_FALSE(identical) << "jitter ignored the seed";
}

TEST(Retry, BackoffGrowsExponentiallyWithinJitterBounds) {
  db::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = std::chrono::microseconds(1000);
  policy.jitter = 0.25;
  db::RetrySchedule schedule(policy);
  double base = 100.0;
  while (const auto delay = schedule.next_delay()) {
    EXPECT_GE(delay->count(), static_cast<std::int64_t>(base * 0.75) - 1);
    EXPECT_LE(delay->count(), static_cast<std::int64_t>(base));
    base = std::min(base * 2.0, 1000.0);
  }
  EXPECT_EQ(schedule.retries(), policy.max_attempts - 1);
}

TEST(Retry, OverallTimeoutBoundsTheScheduledBackoff) {
  db::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.0;
  policy.overall_timeout = std::chrono::microseconds(3500);
  db::RetrySchedule schedule(policy);
  std::size_t granted = 0;
  while (schedule.next_delay()) granted += 1;
  EXPECT_EQ(granted, 3u);  // 3 x 1000us fits the 3500us budget, 4 does not
  EXPECT_LE(schedule.total_backoff().count(), 3500);
}

TEST(Retry, NonePolicyNeverRetries) {
  db::RetrySchedule schedule(db::RetryPolicy::none());
  EXPECT_FALSE(schedule.next_delay().has_value());
}

TEST(Retry, WithRetryRetriesOnlyRetryableFailures) {
  db::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter = 0.0;
  std::vector<std::int64_t> slept;
  const db::Sleeper recorder = [&slept](std::chrono::microseconds d) {
    slept.push_back(d.count());
  };
  const auto transient_only = [](const std::exception& e) {
    const auto* io = dynamic_cast<const db::IoError*>(&e);
    return io != nullptr && io->transient();
  };

  // Succeeds on the third attempt.
  int calls = 0;
  const int result = db::with_retry(
      policy,
      [&calls]() {
        if (++calls < 3) throw db::IoError(db::IoOp::Write, "f", EAGAIN);
        return 7;
      },
      transient_only, recorder);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);

  // A hard error propagates immediately.
  calls = 0;
  EXPECT_THROW(db::with_retry(
                   policy,
                   [&calls]() -> int {
                     ++calls;
                     throw db::IoError(db::IoOp::Write, "f", ENOSPC);
                   },
                   transient_only, recorder),
               db::IoError);
  EXPECT_EQ(calls, 1);

  // Attempts exhausted: the last failure propagates.
  calls = 0;
  EXPECT_THROW(db::with_retry(
                   policy,
                   [&calls]() -> int {
                     ++calls;
                     throw db::IoError(db::IoOp::Write, "f", EINTR);
                   },
                   transient_only, recorder),
               db::IoError);
  EXPECT_EQ(calls, 5);
}

}  // namespace
