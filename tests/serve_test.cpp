// fem2-serve tests: admission control (session caps, inflight caps, a
// deterministically-clocked token bucket), the actor-model scheduling
// invariant (per-session FIFO order on a shared worker pool), overload
// and shutdown behavior, the snapshot read path, and a concurrent
// multi-tenant stress that the tsan CI job runs with a real pool.
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "serve/admission.hpp"
#include "serve/server.hpp"

using namespace fem2;
using appvm::Response;
using serve::Admit;
using serve::AdmissionController;
using serve::Server;
using serve::ServerOptions;
using serve::TenantQuota;

namespace {

/// A hand-cranked clock for driving token buckets without sleeping.
struct FakeClock {
  std::chrono::steady_clock::time_point now{};
  AdmissionController::Clock fn() {
    return [this] { return now; };
  }
  void advance(std::chrono::milliseconds by) { now += by; }
};

std::shared_ptr<db::Engine> memory_engine() {
  return std::make_shared<db::Engine>();
}

ServerOptions small_pool(unsigned workers = 2) {
  ServerOptions options;
  options.workers = workers;
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdmissionController in isolation

TEST(Admission, SessionCapIsPerTenant) {
  AdmissionController admission({.max_sessions = 2});
  EXPECT_EQ(admission.admit_session("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_session("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_session("acme"), Admit::SessionLimit);
  // Another tenant is unaffected by acme's cap.
  EXPECT_EQ(admission.admit_session("globex"), Admit::Ok);
  admission.release_session("acme");
  EXPECT_EQ(admission.admit_session("acme"), Admit::Ok);
}

TEST(Admission, InflightCapReleasesOnCompletion) {
  AdmissionController admission({.max_inflight = 2});
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::InflightLimit);
  admission.complete_request("acme");
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  const auto stats = admission.stats_for("acme");
  EXPECT_EQ(stats.inflight, 2u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Admission, TokenBucketRefillsFromInjectedClock) {
  FakeClock clock;
  TenantQuota quota;
  quota.ops_per_second = 10.0;  // one token per 100ms
  quota.burst = 2.0;
  AdmissionController admission(quota, clock.fn());

  // The bucket primes full: exactly `burst` requests pass, then rate.
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::RateLimit);

  clock.advance(std::chrono::milliseconds(100));  // +1 token
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::RateLimit);

  // Refill is capped at the burst size, not the elapsed time.
  clock.advance(std::chrono::milliseconds(10'000));
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::Ok);
  EXPECT_EQ(admission.admit_request("acme"), Admit::RateLimit);
}

TEST(Admission, QuotaOverridesArePerTenant) {
  AdmissionController admission({.max_sessions = 64});
  admission.set_quota("small", {.max_sessions = 1});
  EXPECT_EQ(admission.quota_for("small").max_sessions, 1u);
  EXPECT_EQ(admission.quota_for("other").max_sessions, 64u);
  EXPECT_EQ(admission.admit_session("small"), Admit::Ok);
  EXPECT_EQ(admission.admit_session("small"), Admit::SessionLimit);
}

// ---------------------------------------------------------------------------
// Server: session lifecycle and quota classification

TEST(Serve, SessionQuotaAnswersQuotaExceeded) {
  auto engine = memory_engine();
  ServerOptions options = small_pool();
  options.default_quota.max_sessions = 1;
  Server server(engine, options);

  const auto first = server.open_session("acme", "alice");
  ASSERT_NE(first.session, 0u);
  const auto second = server.open_session("acme", "bob");
  EXPECT_EQ(second.session, 0u);
  EXPECT_FALSE(second.response.ok);
  EXPECT_EQ(second.response.kind, Response::FailureKind::QuotaExceeded);
  EXPECT_TRUE(Response::retryable(second.response.kind));

  // Closing the first session frees the slot.
  EXPECT_TRUE(server.close_session(first.session).ok);
  EXPECT_NE(server.open_session("acme", "bob").session, 0u);
  EXPECT_EQ(server.stats().sessions_rejected, 1u);
}

TEST(Serve, UnknownSessionIsNotRetryable) {
  Server server(memory_engine(), small_pool());
  const auto response = server.call(999, "list");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.kind, Response::FailureKind::Other);
  EXPECT_FALSE(Response::retryable(response.kind));
  EXPECT_FALSE(server.close_session(999).ok);
}

TEST(Serve, RateLimitedCallRetriesViaInjectedSleeper) {
  auto clock = std::make_shared<FakeClock>();
  auto engine = memory_engine();
  ServerOptions options = small_pool();
  options.admission_clock = clock->fn();
  options.default_quota.ops_per_second = 1.0;  // one token, slow refill
  options.default_quota.burst = 1.0;
  options.retry_policy.max_attempts = 16;
  options.retry_policy.initial_backoff = std::chrono::milliseconds(200);
  options.retry_policy.max_backoff = std::chrono::milliseconds(800);
  Server server(engine, options);
  // The retry backoff advances the fake clock instead of sleeping, so the
  // bucket refills exactly as fast as the client backs off.
  std::atomic<int> sleeps{0};
  server.set_sleeper([clock, &sleeps](std::chrono::microseconds delay) {
    sleeps += 1;
    clock->advance(std::chrono::duration_cast<std::chrono::milliseconds>(
        delay * 40));
  });

  const auto opened = server.open_session("acme", "alice");
  ASSERT_NE(opened.session, 0u);
  EXPECT_TRUE(server.call_with_retry(opened.session, "list").ok);
  // Token spent; the next call must be rate-limited at least once, then
  // succeed after backoff refills the bucket.
  EXPECT_TRUE(server.call_with_retry(opened.session, "list").ok);
  EXPECT_GE(sleeps.load(), 1);
  EXPECT_GE(server.stats().rejected_quota, 1u);
  // `executed` trails the future by one lock acquisition; `submitted`
  // counts at accept time and is exact here.
  EXPECT_EQ(server.stats().submitted, 2u);
}

// ---------------------------------------------------------------------------
// Scheduling: per-session FIFO on a shared pool

TEST(Serve, SessionCommandsExecuteInSubmissionOrder) {
  auto engine = memory_engine();
  Server server(engine, small_pool(4));
  const auto opened = server.open_session("acme", "alice");
  ASSERT_NE(opened.session, 0u);

  // Async-submit interleaved (re-mesh, store) pairs without waiting.
  // FIFO execution means version k of "obj" was built by mesh k; any
  // reordering pairs a store with the wrong mesh and the byte sizes —
  // compared against a serial reference below — give it away.
  constexpr std::size_t kRounds = 8;
  std::vector<std::future<Response>> futures;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::string mesh =
        "mesh truss bays=" + std::to_string(2 + (round % 4)) +
        " load=" + std::to_string(100 + round);
    futures.push_back(server.submit(opened.session, mesh));
    futures.push_back(server.submit(opened.session, "store obj"));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);

  appvm::Database reference;  // serial re-run of the same command script
  appvm::Session serial(reference, "ref");
  for (std::size_t round = 0; round < kRounds; ++round) {
    serial.execute("mesh truss bays=" + std::to_string(2 + (round % 4)) +
                   " load=" + std::to_string(100 + round));
    serial.execute("store obj");
  }
  const auto actual = server.history("obj");
  const auto expected = reference.history("obj");
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].revision, expected[i].revision);
    EXPECT_EQ(actual[i].bytes, expected[i].bytes) << "reordered at " << i;
  }
}

TEST(Serve, FullQueueAnswersOverloaded) {
  auto engine = memory_engine();
  ServerOptions options = small_pool(1);
  options.queue_capacity = 1;
  Server server(engine, options);
  const auto opened = server.open_session("acme", "alice");
  ASSERT_NE(opened.session, 0u);

  // With room for one queued request, a back-to-back pair must
  // eventually trip the overload answer (the worker can steal the first
  // request between the two submits, so loop a bounded number of times).
  bool overloaded = false;
  for (int i = 0; i < 1000 && !overloaded; ++i) {
    auto first = server.submit(opened.session, "list");
    auto second = server.submit(opened.session, "list");
    for (Response response : {first.get(), second.get()}) {
      if (!response.ok) {
        EXPECT_EQ(response.kind, Response::FailureKind::Overloaded);
        EXPECT_TRUE(Response::retryable(response.kind));
        overloaded = true;
      }
    }
  }
  EXPECT_TRUE(overloaded);
  EXPECT_GE(server.stats().rejected_overload, 1u);
}

TEST(Serve, CloseSessionDrainsItsQueue) {
  auto engine = memory_engine();
  Server server(engine, small_pool());
  const auto opened = server.open_session("acme", "alice");
  ASSERT_NE(opened.session, 0u);

  server.submit(opened.session, "mesh truss bays=3 load=50");
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit(opened.session, "store obj"));
  EXPECT_TRUE(server.close_session(opened.session).ok);

  // Everything submitted before the close ran to completion...
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  EXPECT_EQ(engine->revision_of("obj"), 10u);
  // ...and the slot is free again.
  EXPECT_EQ(server.stats().open_sessions, 0u);
  EXPECT_NE(server.open_session("acme", "bob").session, 0u);
}

TEST(Serve, DestructorDrainsAcceptedWork) {
  auto engine = memory_engine();
  std::vector<std::future<Response>> futures;
  {
    Server server(engine, small_pool());
    const auto opened = server.open_session("acme", "alice");
    ASSERT_NE(opened.session, 0u);
    server.submit(opened.session, "mesh truss bays=2 load=10");
    for (int i = 0; i < 5; ++i)
      futures.push_back(server.submit(opened.session, "store obj"));
  }
  // Accepted futures must all resolve — a shutdown never drops work.
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  EXPECT_EQ(engine->revision_of("obj"), 5u);
}

// ---------------------------------------------------------------------------
// Snapshot read path

TEST(Serve, QueryBypassesTheQueue) {
  auto engine = memory_engine();
  Server server(engine, small_pool());
  const auto opened = server.open_session("acme", "alice");
  ASSERT_NE(opened.session, 0u);
  EXPECT_TRUE(server.call(opened.session, "mesh truss bays=3 load=50").ok);
  EXPECT_TRUE(server.call(opened.session, "store bridge").ok);
  EXPECT_TRUE(server.call(opened.session, "store bridge-deck").ok);

  db::QueryFilter filter;
  filter.name_prefix = "bridge";
  const auto result = server.query(filter);
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.plan, "name-range");
  // The snapshot path never counts against the request queue.
  EXPECT_EQ(server.stats().submitted, 3u);
  EXPECT_EQ(server.history("bridge").size(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrent multi-tenant stress (exercised under tsan in CI)

TEST(Serve, ConcurrentTenantsKeepRevisionInvariant) {
  auto engine = memory_engine();
  ServerOptions options = small_pool(4);
  options.retry_policy.max_attempts = 128;
  options.retry_policy.initial_backoff = std::chrono::microseconds(50);
  options.retry_policy.max_backoff = std::chrono::microseconds(1000);
  Server server(engine, options);

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kOps = 25;
  std::atomic<std::uint64_t> acked_stores{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string tenant = c % 2 ? "acme" : "globex";
      const auto opened =
          server.open_session(tenant, "user-" + std::to_string(c));
      if (opened.session == 0) {
        failures += 1;
        return;
      }
      server.call(opened.session,
                  "mesh truss bays=" + std::to_string(2 + c % 3) +
                      " load=" + std::to_string(10 + c));
      for (std::size_t op = 0; op < kOps; ++op) {
        // CAS store on one contested name: the retry loop must absorb
        // every conflict; only genuine failures count.
        const auto r =
            server.call_with_retry(opened.session, "store contested"
                                                   " if-rev=head");
        if (r.ok)
          acked_stores += 1;
        else
          failures += 1;
        if (op % 5 == 0) server.query({});
      }
      server.close_session(opened.session);
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(acked_stores.load(), kClients * kOps);
  // The invariant that makes "no lost writes" concrete: every acked CAS
  // bumped the revision exactly once.
  EXPECT_EQ(engine->revision_of("contested"), kClients * kOps);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.executed);
  EXPECT_EQ(stats.open_sessions, 0u);
}
