#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hw/event.hpp"
#include "hw/fault.hpp"
#include "hw/machine.hpp"
#include "hw/trace.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "sysvm/os.hpp"

namespace fem2::hw {
namespace {

TEST(Engine, ProcessesInTimeThenFifoOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(10, [&] { order.push_back(2); });
  engine.schedule(5, [&] { order.push_back(1); });
  engine.schedule(10, [&] { order.push_back(3); });  // same time: FIFO
  engine.schedule(20, [&] { order.push_back(4); });
  EXPECT_EQ(engine.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, ActionsMayScheduleMore) {
  Engine engine;
  int fired = 0;
  engine.schedule(1, [&] {
    ++fired;
    engine.schedule(1, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 2u);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine engine;
  int fired = 0;
  engine.schedule(5, [&] { ++fired; });
  engine.schedule(15, [&] { ++fired; });
  engine.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ProcessedAndPendingCounters) {
  Engine engine;
  engine.schedule(1, [] {});
  engine.schedule(2, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.run();
  EXPECT_EQ(engine.processed(), 2u);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine engine;
  engine.schedule(10, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(5, [] {}), support::CheckError);
}

MachineConfig small_config() {
  MachineConfig config;
  config.clusters = 2;
  config.pes_per_cluster = 3;
  config.memory_per_cluster = 1 << 16;
  return config;
}

TEST(Machine, PacketDeliveryNotifiesService) {
  Machine machine(small_config());
  std::vector<std::uint32_t> notified;
  machine.set_cluster_service(
      [&](ClusterId c) { notified.push_back(c.index); });
  machine.send_packet(ClusterId{0}, ClusterId{1}, 100, std::any{42});
  EXPECT_EQ(machine.queue_depth(ClusterId{1}), 0u);  // still in flight
  machine.engine().run();
  EXPECT_EQ(machine.queue_depth(ClusterId{1}), 1u);
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], 1u);
  const auto packet = machine.pop_packet(ClusterId{1});
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(std::any_cast<int>(packet->payload), 42);
  EXPECT_EQ(packet->source, (ClusterId{0}));
  EXPECT_FALSE(machine.pop_packet(ClusterId{1}).has_value());
}

TEST(Machine, IntraClusterIsFasterThanNetwork) {
  Machine machine(small_config());
  Cycles local_time = 0, remote_time = 0;
  machine.set_cluster_service([&](ClusterId c) {
    if (c.index == 0 && local_time == 0) local_time = machine.now();
    if (c.index == 1 && remote_time == 0) remote_time = machine.now();
  });
  machine.send_packet(ClusterId{0}, ClusterId{0}, 1000, {});
  machine.send_packet(ClusterId{0}, ClusterId{1}, 1000, {});
  machine.engine().run();
  EXPECT_GT(remote_time, local_time);
}

TEST(Machine, NetworkChannelSerializes) {
  auto config = small_config();
  config.model_network_contention = true;
  Machine machine(config);
  std::vector<Cycles> arrivals;
  machine.set_cluster_service(
      [&](ClusterId) { arrivals.push_back(machine.now()); });
  // Two large packets to the same destination must arrive apart by at
  // least their transfer time.
  machine.send_packet(ClusterId{0}, ClusterId{1}, 10'000, {});
  machine.send_packet(ClusterId{0}, ClusterId{1}, 10'000, {});
  machine.engine().run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto transfer = static_cast<Cycles>(
      config.network_cycles_per_byte * 10'000);
  EXPECT_GE(arrivals[1] - arrivals[0], transfer);
  EXPECT_EQ(machine.metrics().network.messages, 2u);
  EXPECT_EQ(machine.metrics().network.bytes, 20'000u);
}

TEST(Machine, WorkerAcquisitionSkipsKernelPe) {
  Machine machine(small_config());
  const ClusterId c{0};
  EXPECT_EQ(machine.kernel_pe(c), (PeId{c, 0}));
  EXPECT_EQ(machine.idle_workers(c), 2u);  // PEs 1 and 2
  const PeId w1 = machine.acquire_worker(c);
  const PeId w2 = machine.acquire_worker(c);
  EXPECT_TRUE(w1.valid());
  EXPECT_NE(w1.index, 0u);
  EXPECT_NE(w2.index, 0u);
  EXPECT_FALSE(machine.acquire_worker(c).valid());
  machine.release_worker(w1);
  EXPECT_EQ(machine.idle_workers(c), 1u);
}

TEST(Machine, SinglePeClusterKernelDoublesAsWorker) {
  MachineConfig config;
  config.clusters = 1;
  config.pes_per_cluster = 1;
  Machine machine(config);
  const PeId pe = machine.acquire_worker(ClusterId{0});
  EXPECT_TRUE(pe.valid());
  EXPECT_EQ(pe.index, 0u);
}

TEST(Machine, OccupyChargesBusyCycles) {
  Machine machine(small_config());
  const PeId pe = machine.acquire_worker(ClusterId{0});
  bool done = false;
  machine.occupy(pe, 500, [&] { done = true; });
  machine.engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(machine.now(), 500u);
  EXPECT_EQ(machine.metrics().pes[1].busy_cycles, 500u);
  EXPECT_EQ(machine.metrics().pes[1].work_items, 1u);
}

TEST(Machine, FailedPeDropsWorkAndFiresHandler) {
  Machine machine(small_config());
  std::vector<std::uint32_t> lost;
  machine.set_work_lost_handler(
      [&](ClusterId c) { lost.push_back(c.index); });
  const PeId pe = machine.acquire_worker(ClusterId{0});
  bool completed = false;
  machine.occupy(pe, 100, [&] { completed = true; });
  machine.engine().schedule(50, [&] { machine.fail_pe(pe); });
  machine.engine().run();
  EXPECT_FALSE(completed);
  // Handler fires at fail time (busy PE) and again at the dropped
  // completion; both refer to cluster 0.
  EXPECT_GE(lost.size(), 1u);
  for (const auto c : lost) EXPECT_EQ(c, 0u);
  EXPECT_EQ(machine.failed_pe_count(), 1u);
}

TEST(Machine, KernelPromotionOnFailure) {
  Machine machine(small_config());
  const ClusterId c{0};
  machine.fail_pe(PeId{c, 0});
  EXPECT_EQ(machine.kernel_pe(c), (PeId{c, 1}));
  machine.fail_pe(PeId{c, 1});
  EXPECT_EQ(machine.kernel_pe(c), (PeId{c, 2}));
  machine.fail_pe(PeId{c, 2});
  EXPECT_FALSE(machine.kernel_pe(c).valid());
  machine.restore_pe(PeId{c, 1});
  EXPECT_EQ(machine.kernel_pe(c), (PeId{c, 1}));
  EXPECT_EQ(machine.alive_pes(c), 1u);
}

TEST(Machine, RestoredPeInvalidatesOldWork) {
  Machine machine(small_config());
  int lost = 0;
  machine.set_work_lost_handler([&](ClusterId) { ++lost; });
  const PeId pe = machine.acquire_worker(ClusterId{0});
  bool completed = false;
  machine.occupy(pe, 100, [&] { completed = true; });
  machine.engine().schedule(10, [&] {
    machine.fail_pe(pe);
    machine.restore_pe(pe);  // power-cycled: generation moves on
  });
  machine.engine().run();
  EXPECT_FALSE(completed);
  EXPECT_GE(lost, 1);
}

TEST(Machine, MemoryAccounting) {
  Machine machine(small_config());
  const ClusterId c{0};
  machine.allocate(c, 1000);
  machine.allocate(c, 2000);
  EXPECT_EQ(machine.memory_in_use(c), 3000u);
  machine.release(c, 1000);
  EXPECT_EQ(machine.memory_in_use(c), 2000u);
  EXPECT_EQ(machine.metrics().clusters[0].memory_high_water, 3000u);
  EXPECT_THROW(machine.allocate(c, 1 << 20), OutOfMemory);
  EXPECT_THROW(machine.release(c, 99'999), support::CheckError);
}

TEST(Machine, UtilizationConservation) {
  // busy cycles of any PE can never exceed elapsed time.
  Machine machine(small_config());
  const PeId w = machine.acquire_worker(ClusterId{0});
  machine.occupy(w, 300, [&] { machine.release_worker(w); });
  machine.send_packet(ClusterId{0}, ClusterId{1}, 64, {});
  machine.engine().run();
  const auto elapsed = machine.now();
  for (const auto& pe : machine.metrics().pes)
    EXPECT_LE(pe.busy_cycles, elapsed);
  EXPECT_LE(machine.metrics().pe_utilization(elapsed), 1.0);
}

TEST(Machine, MemoryPortSerializesLocalHandoffs) {
  auto config = small_config();
  config.model_memory_contention = true;
  config.memory_cycles_per_byte = 1.0;
  Machine machine(config);
  std::vector<Cycles> arrivals;
  machine.set_cluster_service(
      [&](ClusterId) { arrivals.push_back(machine.now()); });
  machine.send_packet(ClusterId{0}, ClusterId{0}, 1'000, {});
  machine.send_packet(ClusterId{0}, ClusterId{0}, 1'000, {});
  machine.engine().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], 1'000u);  // serialized on the port
  EXPECT_GE(machine.metrics().network.memory_port_busy_cycles, 2'000u);
}

TEST(Tracer, RecordsMachineActivity) {
  Machine machine(small_config());
  Tracer tracer;
  machine.set_tracer(&tracer);

  const PeId worker = machine.acquire_worker(ClusterId{0});
  machine.occupy(worker, 400, [&] { machine.release_worker(worker); });
  machine.send_packet(ClusterId{0}, ClusterId{1}, 128, {});
  machine.fail_pe(PeId{ClusterId{1}, 2});
  machine.engine().run();

  std::size_t sent = 0, delivered = 0, started = 0, finished = 0, failed = 0;
  for (const auto& e : tracer.events()) {
    switch (e.kind) {
      case TraceKind::MessageSent: ++sent; break;
      case TraceKind::MessageDelivered: ++delivered; break;
      case TraceKind::WorkStarted: ++started; break;
      case TraceKind::WorkFinished: ++finished; break;
      case TraceKind::PeFailed: ++failed; break;
      default: break;
    }
  }
  EXPECT_EQ(sent, 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(started, 1u);
  EXPECT_EQ(finished, 1u);
  EXPECT_EQ(failed, 1u);

  const auto gantt = tracer.render_pe_gantt(machine.config(), 0,
                                            machine.now() + 1, 40);
  // The busy PE (cluster 0, pe 1) shows activity; kernel PEs are marked.
  EXPECT_NE(gantt.find("c0p1"), std::string::npos);
  EXPECT_NE(gantt.find("c0p0*"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);

  const auto profile =
      tracer.render_message_profile(0, machine.now() + 1, 30);
  EXPECT_NE(profile.find("peak 1"), std::string::npos);
}

TEST(Tracer, BoundedCapacityDropsOldest) {
  Tracer tracer(100);
  for (std::uint64_t i = 0; i < 250; ++i)
    tracer.record({i, TraceKind::MessageSent, ClusterId{0}, 0, 1});
  EXPECT_LE(tracer.events().size(), 100u);
  EXPECT_GT(tracer.dropped(), 0u);
  // The newest events survive.
  EXPECT_EQ(tracer.events().back().time, 249u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Machine, TrafficMatrixCountsPairs) {
  Machine machine(small_config());
  machine.send_packet(ClusterId{0}, ClusterId{1}, 64, {});
  machine.send_packet(ClusterId{0}, ClusterId{1}, 64, {});
  machine.send_packet(ClusterId{1}, ClusterId{0}, 64, {});
  machine.send_packet(ClusterId{1}, ClusterId{1}, 64, {});  // local
  machine.engine().run();
  const auto& net = machine.metrics().network;
  EXPECT_EQ(net.traffic(0, 1), 2u);
  EXPECT_EQ(net.traffic(1, 0), 1u);
  EXPECT_EQ(net.traffic(1, 1), 1u);
  EXPECT_EQ(net.traffic(0, 0), 0u);
  const auto rendered = net.render_traffic_matrix();
  EXPECT_NE(rendered.find("c0"), std::string::npos);
  EXPECT_NE(rendered.find("2"), std::string::npos);
}

TEST(Machine, QueuePeakTracked) {
  Machine machine(small_config());
  for (int i = 0; i < 5; ++i)
    machine.send_packet(ClusterId{0}, ClusterId{1}, 64, {});
  machine.engine().run();
  EXPECT_EQ(machine.metrics().clusters[1].queue_peak, 5u);
  EXPECT_EQ(machine.metrics().clusters[0].packets_out, 5u);
  EXPECT_EQ(machine.metrics().clusters[1].packets_in, 5u);
}

// The multi-threaded host backend must be invisible in the simulation:
// the same workload, seed and fault plan at 1, 2 and 8 host threads has to
// produce byte-identical machine metrics and OS stats dumps, bit-identical
// displacements, and the same analyzer findings.  The workload is the full
// stack — distributed CG solve with the analyzer attached, losing a PE at
// 25% and a whole cluster at 50% of the fault-free run, on a lossy
// network with reliable transport.
TEST(Determinism, ThreadCountInvariantUnderFaultPlan) {
  struct Outcome {
    Cycles elapsed = 0;
    std::string machine_dump;
    std::string os_dump;
    std::vector<double> displacements;
    std::vector<std::string> findings;
  };

  MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 4;

  fem::PlateMeshOptions mesh;
  mesh.nx = 16;
  mesh.ny = 8;
  mesh.width = 2.0;
  mesh.height = 1.0;
  const auto model = fem::make_cantilever_plate(mesh, 1'000.0);

  const auto run = [&](unsigned threads, Cycles kill_pe_at,
                       Cycles kill_cluster_at) {
    Machine machine(config);
    machine.engine().set_threads(threads);
    sysvm::OsOptions options;
    options.reliable_transport = true;
    sysvm::Os os(machine, options);
    navm::Runtime runtime(os);
    navm::register_parallel_ops(runtime);
    analyze::Analyzer analyzer(runtime);

    FaultPlan plan;
    if (kill_cluster_at != 0) {
      plan.set_drop_probability(kill_pe_at / 2, 0.005);
      plan.fail_pe(kill_pe_at, ClusterId{1}, 2);
      plan.fail_cluster(kill_cluster_at, ClusterId{2});
    }
    FaultInjector injector(machine, plan);
    injector.arm();

    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", runtime, {.workers = 8, .tolerance = 1e-8});
    analyzer.check_now();

    Outcome outcome;
    outcome.elapsed = machine.now();
    outcome.machine_dump = machine.metrics().dump();
    outcome.os_dump = os.metrics().dump();
    outcome.displacements = solution.displacements.values;
    for (const auto& finding : analyzer.findings())
      outcome.findings.push_back(finding.rule + "|" + finding.entity + "|" +
                                 finding.message);
    return outcome;
  };

  // Fault-free probe fixes the kill times relative to the run length.
  const auto probe = run(1, 0, 0);
  ASSERT_GT(probe.elapsed, 0u);
  const Cycles kill_pe_at = probe.elapsed / 4;
  const Cycles kill_cluster_at = probe.elapsed / 2;

  const auto base = run(1, kill_pe_at, kill_cluster_at);
  for (const unsigned threads : {2u, 8u}) {
    const auto other = run(threads, kill_pe_at, kill_cluster_at);
    EXPECT_EQ(other.elapsed, base.elapsed) << "threads=" << threads;
    EXPECT_EQ(other.machine_dump, base.machine_dump)
        << "threads=" << threads;
    EXPECT_EQ(other.os_dump, base.os_dump) << "threads=" << threads;
    EXPECT_EQ(other.displacements, base.displacements)
        << "threads=" << threads;
    EXPECT_EQ(other.findings, base.findings) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace fem2::hw
