// Application user's VM tests: serialization, database, workspace, and the
// interactive command language.
#include <filesystem>

#include <gtest/gtest.h>

#include "appvm/command.hpp"
#include "appvm/database.hpp"
#include "appvm/serialize.hpp"
#include "fem/mesh.hpp"
#include "support/rng.hpp"

namespace fem2::appvm {
namespace {

fem::StructureModel sample_model() {
  fem::PlateMeshOptions options;
  options.nx = 4;
  options.ny = 2;
  options.material.youngs_modulus = 1234.5;
  options.material.name = "aluminium";
  return fem::make_cantilever_plate(options, 17.0);
}

TEST(Serialize, RoundTripPreservesModel) {
  const auto model = sample_model();
  const auto text = serialize_model(model);
  const auto parsed = parse_model(text);

  EXPECT_EQ(parsed.name, model.name);
  ASSERT_EQ(parsed.nodes.size(), model.nodes.size());
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.nodes[i].x, model.nodes[i].x);
    EXPECT_DOUBLE_EQ(parsed.nodes[i].y, model.nodes[i].y);
  }
  ASSERT_EQ(parsed.elements.size(), model.elements.size());
  for (std::size_t i = 0; i < model.elements.size(); ++i) {
    EXPECT_EQ(parsed.elements[i].type, model.elements[i].type);
    EXPECT_EQ(parsed.elements[i].nodes, model.elements[i].nodes);
  }
  EXPECT_EQ(parsed.constraints.size(), model.constraints.size());
  ASSERT_EQ(parsed.load_sets.size(), model.load_sets.size());
  EXPECT_DOUBLE_EQ(parsed.materials[0].youngs_modulus, 1234.5);
  EXPECT_EQ(parsed.materials[0].name, "aluminium");
  // Round-trip of the round-trip is exact.
  EXPECT_EQ(serialize_model(parsed), text);
}

class SerializeRandomModels : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializeRandomModels, RoundTripRandomTrusses) {
  support::Rng rng(GetParam());
  fem::TrussOptions options;
  options.bays = 2 + rng.next_below(8);
  options.bay_width = rng.uniform(0.5, 2.0);
  options.height = rng.uniform(0.5, 2.0);
  const auto model =
      fem::make_truss_bridge(options, rng.uniform(1.0, 100.0));
  const auto parsed = parse_model(serialize_model(model));
  EXPECT_EQ(serialize_model(parsed), serialize_model(model));
  parsed.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomModels,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Serialize, RejectsMalformedText) {
  EXPECT_THROW(parse_model("node 1 2"), SerializeError);  // no model record
  EXPECT_THROW(parse_model("model m\nnode 1"), SerializeError);
  EXPECT_THROW(parse_model("model m\nnode a b"), SerializeError);
  EXPECT_THROW(parse_model("model m\nelement bar2 0"), SerializeError);
  EXPECT_THROW(parse_model("model m\nwhatever 1"), SerializeError);
  EXPECT_THROW(parse_model("model m\nmaterial s X=3"), SerializeError);
}

TEST(Database, StoreRetrieveListRemove) {
  Database db;
  EXPECT_FALSE(db.contains("m"));
  db.store_model("m", sample_model());
  EXPECT_TRUE(db.contains("m"));
  const auto model = db.retrieve_model("m");
  EXPECT_EQ(model.name, "cantilever-plate");

  db.store_model("m", model);  // revision bump
  const auto entries = db.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].revision, 2u);
  EXPECT_GT(db.storage_bytes(), 0u);

  EXPECT_TRUE(db.remove("m"));
  EXPECT_FALSE(db.remove("m"));
  EXPECT_THROW(db.retrieve_model("m"), support::Error);
}

TEST(Database, ResultsStorage) {
  Database db;
  const auto model = sample_model();
  const auto results = fem::analyze(model, "tip-shear");
  db.store_results("r", results);
  const auto& loaded = db.retrieve_results("r");
  EXPECT_EQ(loaded.stresses.size(), results.stresses.size());
  EXPECT_EQ(db.list().size(), 1u);
  EXPECT_EQ(db.list()[0].kind, "results");
}

TEST(Session, BuildModelCommandByCommand) {
  Database db;
  Session session(db);
  for (const char* line : {
           "new model bar-test",
           "material steel E=1000 A=0.01",
           "node 0 0",
           "node 1.5 0",
           "element bar 0 1",
           "fix 0",
           "constrain 1 1",
           "load pull 1 0 50",
           "solve pull using cholesky",
       }) {
    const auto response = session.execute(line);
    EXPECT_TRUE(response.ok) << line << " -> " << response.text;
  }
  const auto& u = session.workspace().results().solution.displacements;
  EXPECT_NEAR(u.at(1, 0), 50.0 * 1.5 / (1000.0 * 0.01), 1e-9);

  const auto show = session.execute("show displacements 1");
  EXPECT_TRUE(show.ok);
  EXPECT_NE(show.text.find("node 1"), std::string::npos);
}

TEST(Session, MeshSolveStressWorkflow) {
  Database db;
  Session session(db);
  auto r = session.execute("mesh plate nx=6 ny=3 load=10");
  ASSERT_TRUE(r.ok) << r.text;
  r = session.execute("solve tip-shear using cg tol=1e-10");
  ASSERT_TRUE(r.ok) << r.text;
  r = session.execute("stresses");
  ASSERT_TRUE(r.ok) << r.text;
  EXPECT_NE(r.text.find("peak von Mises"), std::string::npos);
  r = session.execute("show peak");
  EXPECT_TRUE(r.ok);
}

TEST(Session, ModesCommandReportsFrequencies) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh beam segments=10 length=1 load=5").ok);
  const auto r = session.execute("modes 2");
  ASSERT_TRUE(r.ok) << r.text;
  EXPECT_NE(r.text.find("f1="), std::string::npos);
  EXPECT_NE(r.text.find("f2="), std::string::npos);
  EXPECT_NE(r.text.find("Hz"), std::string::npos);
  EXPECT_FALSE(session.execute("modes 0").ok);
  EXPECT_FALSE(session.execute("modes two").ok);
}

TEST(Serialize, DensityRoundTrips) {
  fem::StructureModel model;
  fem::Material m;
  m.name = "titanium";
  m.density = 4500.0;
  model.add_material(m);
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_element(fem::ElementType::Bar2, {0, 1});
  const auto parsed = parse_model(serialize_model(model));
  EXPECT_DOUBLE_EQ(parsed.materials[0].density, 4500.0);
}

TEST(Session, ErrorsAreResponsesNotExceptions) {
  Database db;
  Session session(db);
  EXPECT_FALSE(session.execute("bogus command").ok);
  EXPECT_FALSE(session.execute("node 1 2").ok);  // no model yet
  EXPECT_FALSE(session.execute("solve nothing").ok);
  EXPECT_FALSE(session.execute("retrieve ghost").ok);
  EXPECT_FALSE(session.execute("mesh cube").ok);
  EXPECT_FALSE(session.execute("show").ok);
  session.execute("new model m");
  EXPECT_FALSE(session.execute("node one two").ok);
  EXPECT_FALSE(session.execute("element bar 0").ok);
  EXPECT_FALSE(session.execute("stresses").ok);  // nothing solved
}

TEST(Session, CommentsAndBlanksIgnored) {
  Database db;
  Session session(db);
  EXPECT_TRUE(session.execute("").ok);
  EXPECT_TRUE(session.execute("   ").ok);
  EXPECT_TRUE(session.execute("# a comment").ok);
}

TEST(Session, ScriptStopsOnFirstError) {
  Database db;
  Session session(db);
  const auto responses = session.execute_script(
      "new model m\nbroken line here\nnode 0 0");
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
}

TEST(Session, MultiUserSharedDatabase) {
  Database db;
  Session alice(db, "alice");
  Session bob(db, "bob");
  ASSERT_TRUE(alice.execute("mesh truss bays=4 load=100").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);
  // Bob retrieves Alice's model and works on his own copy.
  ASSERT_TRUE(bob.execute("retrieve bridge").ok);
  ASSERT_TRUE(bob.execute("solve deck using skyline").ok);
  // Bob's local edits do not touch the stored copy until he stores.
  ASSERT_TRUE(bob.execute("load deck 1 0 5").ok);
  const auto alice_copy = db.retrieve_model("bridge");
  const auto& bob_model = bob.workspace().model();
  EXPECT_NE(alice_copy.load_sets.at("deck").loads.size(),
            bob_model.load_sets.at("deck").loads.size());
  EXPECT_EQ(alice.user(), "alice");
  EXPECT_EQ(bob.user(), "bob");
}

TEST(Session, SaveAndOpenModelFiles) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh truss bays=3 load=50").ok);
  const std::string path =
      ::testing::TempDir() + "/fem2_session_model.txt";
  ASSERT_TRUE(session.execute("save " + path).ok);

  Session other(db);
  const auto opened = other.execute("open " + path);
  ASSERT_TRUE(opened.ok) << opened.text;
  EXPECT_EQ(other.workspace().model().name, "truss-bridge");
  EXPECT_EQ(other.workspace().model().elements.size(),
            session.workspace().model().elements.size());

  EXPECT_FALSE(other.execute("open /nonexistent/nowhere.txt").ok);
  EXPECT_FALSE(other.execute("save /nonexistent/dir/file.txt").ok);
}

TEST(Session, HelpListsCommands) {
  const auto help = Session::help_text();
  for (const char* command :
       {"new model", "mesh", "solve", "stresses", "store", "retrieve",
        "begin", "commit", "abort", "history", "if-rev"}) {
    EXPECT_NE(help.find(command), std::string::npos) << command;
  }
}

TEST(Serialize, ResultsRoundTripPreserved) {
  const auto model = sample_model();
  const auto results = fem::analyze(model, "tip-shear");
  const auto text = serialize_results(results);
  const auto parsed = parse_results(text);

  EXPECT_EQ(parsed.solution.stats.method, results.solution.stats.method);
  EXPECT_EQ(parsed.solution.stats.converged, results.solution.stats.converged);
  EXPECT_EQ(parsed.solution.stats.iterations,
            results.solution.stats.iterations);
  ASSERT_EQ(parsed.stresses.size(), results.stresses.size());
  for (std::size_t i = 0; i < results.stresses.size(); ++i)
    EXPECT_DOUBLE_EQ(parsed.stresses[i].von_mises,
                     results.stresses[i].von_mises);
  EXPECT_EQ(parsed.peak.element, results.peak.element);
  // Round-trip of the round-trip is bit-identical.
  EXPECT_EQ(serialize_results(parsed), text);
}

TEST_P(SerializeRandomModels, ResultsRoundTripRandomTrusses) {
  support::Rng rng(GetParam() + 1000);
  fem::TrussOptions options;
  options.bays = 2 + rng.next_below(6);
  const auto model =
      fem::make_truss_bridge(options, rng.uniform(1.0, 100.0));
  const auto results = fem::analyze(model, "deck");
  const auto text = serialize_results(results);
  EXPECT_EQ(serialize_results(parse_results(text)), text);
}

TEST(Serialize, RejectsMalformedResults) {
  const auto text = serialize_results(fem::analyze(sample_model(), "tip-shear"));
  EXPECT_THROW(parse_results(""), SerializeError);  // no results record
  EXPECT_THROW(parse_results("model m"), SerializeError);
  EXPECT_THROW(parse_results("results\nconverged maybe"), SerializeError);
  EXPECT_THROW(parse_results("results\ndisplacements 2 1.0 oops"),
               SerializeError);
  EXPECT_THROW(parse_results("results\nstress 0 1 2 3"), SerializeError);
  EXPECT_THROW(parse_results("results\nwhatever 1"), SerializeError);
  // A truncated line inside an otherwise good document is rejected.
  const auto cut = text.rfind(' ');
  EXPECT_THROW(parse_results(text.substr(0, cut + 1)), SerializeError);
}

TEST(Serialize, RejectsStructurallyInvalidModels) {
  // Element references a node that does not exist.
  EXPECT_THROW(parse_model("model m\nnode 0 0\nnode 1 0\n"
                           "element bar2 0 7 mat=0"),
               SerializeError);
  // Element references a material that does not exist.
  EXPECT_THROW(parse_model("model m\nmaterial s E=1\nnode 0 0\nnode 1 0\n"
                           "element bar2 0 1 mat=5"),
               SerializeError);
  // Constraint on a node that does not exist.
  EXPECT_THROW(parse_model("model m\nnode 0 0\nconstraint 3 0 0"),
               SerializeError);
  // Duplicate constraint on the same (node, dof).
  EXPECT_THROW(parse_model("model m\nnode 0 0\n"
                           "constraint 0 1 0\nconstraint 0 1 5"),
               SerializeError);
  // Load on a node that does not exist.
  EXPECT_THROW(parse_model("model m\nnode 0 0\nload pull 9 0 10"),
               SerializeError);
}

TEST(Database, OptimisticConcurrencyAndHistory) {
  Database db;
  const auto model = sample_model();
  EXPECT_EQ(db.store_model("m", model, 0), 1u);  // must-not-exist store
  EXPECT_THROW(db.store_model("m", model, 0), db::ConflictError);
  EXPECT_EQ(db.store_model("m", model, 1), 2u);  // CAS against rev 1
  EXPECT_THROW(db.store_model("m", model, 1), db::ConflictError);
  EXPECT_EQ(db.revision("m"), 2u);

  // MVCC: the old revision is still readable, and history lists both.
  const auto old_copy = db.retrieve_model("m", 1);
  EXPECT_EQ(old_copy.name, model.name);
  const auto history = db.history("m");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].revision, 1u);
  EXPECT_EQ(history[1].revision, 2u);
  EXPECT_FALSE(history[1].deleted);

  EXPECT_THROW(db.remove("m", 1), db::ConflictError);
  EXPECT_TRUE(db.remove("m", 2));
  EXPECT_EQ(db.revision("m"), 0u);
}

TEST(Database, TransactionsCommitAndAbort) {
  Database db;
  const auto model = sample_model();
  const auto results = fem::analyze(model, "tip-shear");

  const auto txn = db.begin();
  db.store_model(txn, "m", model);
  db.store_results(txn, "r", results);
  // Buffered writes are invisible outside the transaction...
  EXPECT_FALSE(db.contains("m"));
  // ...but the transaction reads its own writes.
  EXPECT_EQ(db.retrieve_model(txn, "m").name, model.name);
  EXPECT_EQ(db.commit(txn), 2u);
  EXPECT_TRUE(db.contains("m"));
  EXPECT_TRUE(db.contains("r"));

  const auto doomed = db.begin();
  db.remove(doomed, "m");
  db.abort(doomed);
  EXPECT_TRUE(db.contains("m"));
}

TEST(Database, RetrieveResultsByValueSurvivesOverwrite) {
  Database db;
  const auto model = sample_model();
  db.store_results("r", fem::analyze(model, "tip-shear"));
  const auto results = db.retrieve_results("r");
  const auto peak = results.peak.von_mises;
  // The entry the value came from is overwritten and then removed; the
  // returned copy must stay valid (the old interface returned a reference
  // into the store, which dangled here).
  db.store_results("r", fem::analyze(model, "tip-shear"));
  db.remove("r");
  EXPECT_EQ(results.peak.von_mises, peak);
  EXPECT_FALSE(results.stresses.empty());
}

TEST(Database, PersistentReopenRecoversEntries) {
  const std::string dir = ::testing::TempDir() + "fem2_appvm_persist";
  std::filesystem::remove_all(dir);
  const auto model = sample_model();
  {
    Database db(dir);
    db.store_model("m", model);
    db.store_results("r", fem::analyze(model, "tip-shear"));
  }
  {
    Database db(dir);
    EXPECT_EQ(db.retrieve_model("m").name, model.name);
    EXPECT_EQ(db.retrieve_results("r").stresses.size(),
              model.elements.size());
    EXPECT_EQ(db.list().size(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(Session, TransactionVerbs) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh truss bays=3 load=10").ok);

  // Writes buffer inside a transaction; commit publishes them atomically.
  EXPECT_FALSE(session.execute("commit").ok);  // no open transaction
  ASSERT_TRUE(session.execute("begin").ok);
  EXPECT_FALSE(session.execute("begin").ok);  // one at a time
  ASSERT_TRUE(session.execute("store a").ok);
  ASSERT_TRUE(session.execute("store b").ok);
  EXPECT_FALSE(db.contains("a"));
  ASSERT_TRUE(session.execute("commit").ok);
  EXPECT_TRUE(db.contains("a"));
  EXPECT_TRUE(db.contains("b"));

  // Aborted transactions leave no trace.
  ASSERT_TRUE(session.execute("begin").ok);
  ASSERT_TRUE(session.execute("store c").ok);
  ASSERT_TRUE(session.execute("abort").ok);
  EXPECT_FALSE(db.contains("c"));
  EXPECT_FALSE(session.execute("abort").ok);
}

TEST(Session, ConflictDetectionAndRetryWithIfRev) {
  Database db;
  Session alice(db, "alice");
  Session bob(db, "bob");
  ASSERT_TRUE(alice.execute("mesh truss bays=4 load=100").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);  // rev 1
  ASSERT_TRUE(bob.execute("retrieve bridge").ok);

  // Alice revises first; Bob's stale store is refused, not clobbered.
  ASSERT_TRUE(alice.execute("store bridge if-rev=1").ok);  // rev 2
  const auto stale = bob.execute("store bridge if-rev=1");
  EXPECT_FALSE(stale.ok);
  EXPECT_NE(stale.text.find("conflict"), std::string::npos);
  EXPECT_EQ(db.revision("bridge"), 2u);

  // The retry protocol: re-read, then CAS against what was seen.
  ASSERT_TRUE(bob.execute("retrieve bridge").ok);
  ASSERT_TRUE(bob.execute("store bridge if-rev=2").ok);
  EXPECT_EQ(db.revision("bridge"), 3u);

  // A conflicted transactional commit reports and drops the transaction.
  ASSERT_TRUE(bob.execute("begin").ok);
  ASSERT_TRUE(bob.execute("store bridge if-rev=3").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);  // rev 4 wins the race
  const auto clash = bob.execute("commit");
  EXPECT_FALSE(clash.ok);
  EXPECT_NE(clash.text.find("conflict"), std::string::npos);
  EXPECT_EQ(db.revision("bridge"), 4u);
  EXPECT_FALSE(bob.execute("commit").ok);  // the transaction is gone

  const auto history = alice.execute("history bridge");
  ASSERT_TRUE(history.ok);
  EXPECT_NE(history.text.find("rev 4"), std::string::npos);
}

TEST(Session, RetrieveHistoricalRevision) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh truss bays=3 load=10").ok);
  ASSERT_TRUE(session.execute("store m").ok);
  ASSERT_TRUE(session.execute("load deck 1 1 -5").ok);
  ASSERT_TRUE(session.execute("store m").ok);
  const auto old_rev = session.execute("retrieve m rev=1");
  ASSERT_TRUE(old_rev.ok) << old_rev.text;
  EXPECT_NE(old_rev.text.find("rev 1"), std::string::npos);
  EXPECT_FALSE(session.execute("retrieve m rev=99").ok);
}

TEST(Session, FailureKindClassifiesConflicts) {
  Database db;
  Session alice(db);
  Session bob(db);
  ASSERT_TRUE(alice.execute("mesh truss bays=2 load=10").ok);
  ASSERT_TRUE(bob.execute("mesh truss bays=3 load=20").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);  // rev 1

  const auto stale = bob.execute("store bridge if-rev=9");
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.kind, Response::FailureKind::Conflict);

  const auto typo = bob.execute("store");
  EXPECT_FALSE(typo.ok);
  EXPECT_EQ(typo.kind, Response::FailureKind::Other);

  const auto fine = bob.execute("store bridge if-rev=1");
  EXPECT_TRUE(fine.ok);
  EXPECT_EQ(fine.kind, Response::FailureKind::None);
}

TEST(Session, IfRevHeadResolvesTheCurrentRevision) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh truss bays=2 load=10").ok);
  // head works on an absent name (expected revision 0 = create)...
  ASSERT_TRUE(session.execute("store bridge if-rev=head").ok);
  EXPECT_EQ(db.revision("bridge"), 1u);
  // ...and tracks the head as it moves.
  ASSERT_TRUE(session.execute("store bridge if-rev=head").ok);
  ASSERT_TRUE(session.execute("store bridge if-rev=head").ok);
  EXPECT_EQ(db.revision("bridge"), 3u);
}

TEST(Session, ExecuteWithRetryResolvesRacesViaHead) {
  Database db;
  Session alice(db);
  Session bob(db);
  ASSERT_TRUE(alice.execute("mesh truss bays=2 load=10").ok);
  ASSERT_TRUE(bob.execute("mesh truss bays=3 load=20").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);  // rev 1

  // Bob's sleeper simulates the race: while he "waits", Alice commits
  // again, so only the re-resolved head can ever succeed.
  db::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  bob.set_retry_policy(policy);
  std::vector<std::int64_t> slept;
  bob.set_sleeper([&](std::chrono::microseconds d) {
    slept.push_back(d.count());
    ASSERT_TRUE(alice.execute("store bridge").ok);
  });

  // A pinned stale revision never recovers: retries burn out.
  const auto pinned = bob.execute_with_retry("store bridge if-rev=9");
  EXPECT_FALSE(pinned.ok);
  EXPECT_EQ(pinned.kind, Response::FailureKind::Conflict);
  EXPECT_EQ(slept.size(), 3u);  // max_attempts - 1 backoffs, all recorded

  // `if-rev=head` re-reads the revision each attempt and lands first try
  // (no interleaved writer inside execute_with_retry's attempt).
  slept.clear();
  const auto head = bob.execute_with_retry("store bridge if-rev=head");
  EXPECT_TRUE(head.ok) << head.text;
  EXPECT_TRUE(slept.empty());

  // Non-retryable failures return immediately, no sleeping.
  const auto typo = bob.execute_with_retry("store");
  EXPECT_FALSE(typo.ok);
  EXPECT_EQ(typo.kind, Response::FailureKind::Other);
  EXPECT_TRUE(slept.empty());
}

TEST(Session, TenantDefaultsEmptyAndIsRecorded) {
  Database db;
  Session plain(db);
  EXPECT_TRUE(plain.tenant().empty());
  Session scoped(db, "alice", "acme");
  EXPECT_EQ(scoped.user(), "alice");
  EXPECT_EQ(scoped.tenant(), "acme");
}

TEST(Session, RetryableClassificationCoversServerKinds) {
  // The shared contract between execute_with_retry and the serve layer's
  // call_with_retry: which failures are worth another attempt.
  EXPECT_TRUE(Response::retryable(Response::FailureKind::Conflict));
  EXPECT_TRUE(Response::retryable(Response::FailureKind::TransientIo));
  EXPECT_TRUE(Response::retryable(Response::FailureKind::QuotaExceeded));
  EXPECT_TRUE(Response::retryable(Response::FailureKind::Overloaded));
  EXPECT_FALSE(Response::retryable(Response::FailureKind::None));
  EXPECT_FALSE(Response::retryable(Response::FailureKind::Degraded));
  EXPECT_FALSE(Response::retryable(Response::FailureKind::Other));
}

TEST(Session, QueryVerbFiltersAndReportsPlan) {
  Database db;
  Session session(db);
  session.execute("mesh truss bays=2 load=100");
  session.execute("store bridge");
  session.execute("store bridge-deck");
  session.execute("store bridge");  // rev 2
  ASSERT_TRUE(session.execute("solve deck").ok);
  ASSERT_TRUE(session.execute("store results bridge-results").ok);

  const auto all = session.execute("query");
  ASSERT_TRUE(all.ok) << all.text;
  EXPECT_NE(all.text.find("3 rows"), std::string::npos) << all.text;
  EXPECT_NE(all.text.find("plan scan"), std::string::npos) << all.text;

  const auto by_kind = session.execute("query kind=model");
  ASSERT_TRUE(by_kind.ok);
  EXPECT_NE(by_kind.text.find("2 rows"), std::string::npos) << by_kind.text;
  EXPECT_NE(by_kind.text.find("plan kind-index"), std::string::npos);

  const auto by_prefix = session.execute("query prefix=bridge-");
  ASSERT_TRUE(by_prefix.ok);
  EXPECT_NE(by_prefix.text.find("2 rows"), std::string::npos)
      << by_prefix.text;
  EXPECT_NE(by_prefix.text.find("plan name-range"), std::string::npos);

  const auto by_revision = session.execute("query min-rev=2");
  ASSERT_TRUE(by_revision.ok);
  EXPECT_NE(by_revision.text.find("'bridge' rev 2"), std::string::npos)
      << by_revision.text;
  EXPECT_NE(by_revision.text.find("plan revision-index"), std::string::npos);

  const auto limited = session.execute("query limit=1");
  ASSERT_TRUE(limited.ok);
  EXPECT_NE(limited.text.find("1 row "), std::string::npos) << limited.text;
  EXPECT_NE(limited.text.find("truncated by limit"), std::string::npos);
}

TEST(Session, QueryVerbRejectsUnknownOptions) {
  Database db;
  Session session(db);
  const auto bad_key = session.execute("query color=red");
  EXPECT_FALSE(bad_key.ok);
  EXPECT_NE(bad_key.text.find("unknown query option"), std::string::npos);
  const auto no_eq = session.execute("query bridge");
  EXPECT_FALSE(no_eq.ok);
  EXPECT_NE(no_eq.text.find("usage:"), std::string::npos);
}

TEST(Workspace, StorageAccounting) {
  Database db;
  Session session(db);
  EXPECT_EQ(session.workspace().storage_bytes(), 0u);
  session.execute("mesh plate nx=8 ny=4 load=1");
  const auto with_model = session.workspace().storage_bytes();
  EXPECT_GT(with_model, 0u);
  session.execute("solve tip-shear");
  EXPECT_GT(session.workspace().storage_bytes(), with_model);
}

}  // namespace
}  // namespace fem2::appvm
