// Application user's VM tests: serialization, database, workspace, and the
// interactive command language.
#include <gtest/gtest.h>

#include "appvm/command.hpp"
#include "appvm/database.hpp"
#include "appvm/serialize.hpp"
#include "fem/mesh.hpp"
#include "support/rng.hpp"

namespace fem2::appvm {
namespace {

fem::StructureModel sample_model() {
  fem::PlateMeshOptions options;
  options.nx = 4;
  options.ny = 2;
  options.material.youngs_modulus = 1234.5;
  options.material.name = "aluminium";
  return fem::make_cantilever_plate(options, 17.0);
}

TEST(Serialize, RoundTripPreservesModel) {
  const auto model = sample_model();
  const auto text = serialize_model(model);
  const auto parsed = parse_model(text);

  EXPECT_EQ(parsed.name, model.name);
  ASSERT_EQ(parsed.nodes.size(), model.nodes.size());
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.nodes[i].x, model.nodes[i].x);
    EXPECT_DOUBLE_EQ(parsed.nodes[i].y, model.nodes[i].y);
  }
  ASSERT_EQ(parsed.elements.size(), model.elements.size());
  for (std::size_t i = 0; i < model.elements.size(); ++i) {
    EXPECT_EQ(parsed.elements[i].type, model.elements[i].type);
    EXPECT_EQ(parsed.elements[i].nodes, model.elements[i].nodes);
  }
  EXPECT_EQ(parsed.constraints.size(), model.constraints.size());
  ASSERT_EQ(parsed.load_sets.size(), model.load_sets.size());
  EXPECT_DOUBLE_EQ(parsed.materials[0].youngs_modulus, 1234.5);
  EXPECT_EQ(parsed.materials[0].name, "aluminium");
  // Round-trip of the round-trip is exact.
  EXPECT_EQ(serialize_model(parsed), text);
}

class SerializeRandomModels : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializeRandomModels, RoundTripRandomTrusses) {
  support::Rng rng(GetParam());
  fem::TrussOptions options;
  options.bays = 2 + rng.next_below(8);
  options.bay_width = rng.uniform(0.5, 2.0);
  options.height = rng.uniform(0.5, 2.0);
  const auto model =
      fem::make_truss_bridge(options, rng.uniform(1.0, 100.0));
  const auto parsed = parse_model(serialize_model(model));
  EXPECT_EQ(serialize_model(parsed), serialize_model(model));
  parsed.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomModels,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Serialize, RejectsMalformedText) {
  EXPECT_THROW(parse_model("node 1 2"), SerializeError);  // no model record
  EXPECT_THROW(parse_model("model m\nnode 1"), SerializeError);
  EXPECT_THROW(parse_model("model m\nnode a b"), SerializeError);
  EXPECT_THROW(parse_model("model m\nelement bar2 0"), SerializeError);
  EXPECT_THROW(parse_model("model m\nwhatever 1"), SerializeError);
  EXPECT_THROW(parse_model("model m\nmaterial s X=3"), SerializeError);
}

TEST(Database, StoreRetrieveListRemove) {
  Database db;
  EXPECT_FALSE(db.contains("m"));
  db.store_model("m", sample_model());
  EXPECT_TRUE(db.contains("m"));
  const auto model = db.retrieve_model("m");
  EXPECT_EQ(model.name, "cantilever-plate");

  db.store_model("m", model);  // revision bump
  const auto entries = db.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].revision, 2u);
  EXPECT_GT(db.storage_bytes(), 0u);

  EXPECT_TRUE(db.remove("m"));
  EXPECT_FALSE(db.remove("m"));
  EXPECT_THROW(db.retrieve_model("m"), support::Error);
}

TEST(Database, ResultsStorage) {
  Database db;
  const auto model = sample_model();
  const auto results = fem::analyze(model, "tip-shear");
  db.store_results("r", results);
  const auto& loaded = db.retrieve_results("r");
  EXPECT_EQ(loaded.stresses.size(), results.stresses.size());
  EXPECT_EQ(db.list().size(), 1u);
  EXPECT_EQ(db.list()[0].kind, "results");
}

TEST(Session, BuildModelCommandByCommand) {
  Database db;
  Session session(db);
  for (const char* line : {
           "new model bar-test",
           "material steel E=1000 A=0.01",
           "node 0 0",
           "node 1.5 0",
           "element bar 0 1",
           "fix 0",
           "constrain 1 1",
           "load pull 1 0 50",
           "solve pull using cholesky",
       }) {
    const auto response = session.execute(line);
    EXPECT_TRUE(response.ok) << line << " -> " << response.text;
  }
  const auto& u = session.workspace().results().solution.displacements;
  EXPECT_NEAR(u.at(1, 0), 50.0 * 1.5 / (1000.0 * 0.01), 1e-9);

  const auto show = session.execute("show displacements 1");
  EXPECT_TRUE(show.ok);
  EXPECT_NE(show.text.find("node 1"), std::string::npos);
}

TEST(Session, MeshSolveStressWorkflow) {
  Database db;
  Session session(db);
  auto r = session.execute("mesh plate nx=6 ny=3 load=10");
  ASSERT_TRUE(r.ok) << r.text;
  r = session.execute("solve tip-shear using cg tol=1e-10");
  ASSERT_TRUE(r.ok) << r.text;
  r = session.execute("stresses");
  ASSERT_TRUE(r.ok) << r.text;
  EXPECT_NE(r.text.find("peak von Mises"), std::string::npos);
  r = session.execute("show peak");
  EXPECT_TRUE(r.ok);
}

TEST(Session, ModesCommandReportsFrequencies) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh beam segments=10 length=1 load=5").ok);
  const auto r = session.execute("modes 2");
  ASSERT_TRUE(r.ok) << r.text;
  EXPECT_NE(r.text.find("f1="), std::string::npos);
  EXPECT_NE(r.text.find("f2="), std::string::npos);
  EXPECT_NE(r.text.find("Hz"), std::string::npos);
  EXPECT_FALSE(session.execute("modes 0").ok);
  EXPECT_FALSE(session.execute("modes two").ok);
}

TEST(Serialize, DensityRoundTrips) {
  fem::StructureModel model;
  fem::Material m;
  m.name = "titanium";
  m.density = 4500.0;
  model.add_material(m);
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_element(fem::ElementType::Bar2, {0, 1});
  const auto parsed = parse_model(serialize_model(model));
  EXPECT_DOUBLE_EQ(parsed.materials[0].density, 4500.0);
}

TEST(Session, ErrorsAreResponsesNotExceptions) {
  Database db;
  Session session(db);
  EXPECT_FALSE(session.execute("bogus command").ok);
  EXPECT_FALSE(session.execute("node 1 2").ok);  // no model yet
  EXPECT_FALSE(session.execute("solve nothing").ok);
  EXPECT_FALSE(session.execute("retrieve ghost").ok);
  EXPECT_FALSE(session.execute("mesh cube").ok);
  EXPECT_FALSE(session.execute("show").ok);
  session.execute("new model m");
  EXPECT_FALSE(session.execute("node one two").ok);
  EXPECT_FALSE(session.execute("element bar 0").ok);
  EXPECT_FALSE(session.execute("stresses").ok);  // nothing solved
}

TEST(Session, CommentsAndBlanksIgnored) {
  Database db;
  Session session(db);
  EXPECT_TRUE(session.execute("").ok);
  EXPECT_TRUE(session.execute("   ").ok);
  EXPECT_TRUE(session.execute("# a comment").ok);
}

TEST(Session, ScriptStopsOnFirstError) {
  Database db;
  Session session(db);
  const auto responses = session.execute_script(
      "new model m\nbroken line here\nnode 0 0");
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
}

TEST(Session, MultiUserSharedDatabase) {
  Database db;
  Session alice(db, "alice");
  Session bob(db, "bob");
  ASSERT_TRUE(alice.execute("mesh truss bays=4 load=100").ok);
  ASSERT_TRUE(alice.execute("store bridge").ok);
  // Bob retrieves Alice's model and works on his own copy.
  ASSERT_TRUE(bob.execute("retrieve bridge").ok);
  ASSERT_TRUE(bob.execute("solve deck using skyline").ok);
  // Bob's local edits do not touch the stored copy until he stores.
  ASSERT_TRUE(bob.execute("load deck 1 0 5").ok);
  const auto alice_copy = db.retrieve_model("bridge");
  const auto& bob_model = bob.workspace().model();
  EXPECT_NE(alice_copy.load_sets.at("deck").loads.size(),
            bob_model.load_sets.at("deck").loads.size());
  EXPECT_EQ(alice.user(), "alice");
  EXPECT_EQ(bob.user(), "bob");
}

TEST(Session, SaveAndOpenModelFiles) {
  Database db;
  Session session(db);
  ASSERT_TRUE(session.execute("mesh truss bays=3 load=50").ok);
  const std::string path =
      ::testing::TempDir() + "/fem2_session_model.txt";
  ASSERT_TRUE(session.execute("save " + path).ok);

  Session other(db);
  const auto opened = other.execute("open " + path);
  ASSERT_TRUE(opened.ok) << opened.text;
  EXPECT_EQ(other.workspace().model().name, "truss-bridge");
  EXPECT_EQ(other.workspace().model().elements.size(),
            session.workspace().model().elements.size());

  EXPECT_FALSE(other.execute("open /nonexistent/nowhere.txt").ok);
  EXPECT_FALSE(other.execute("save /nonexistent/dir/file.txt").ok);
}

TEST(Session, HelpListsCommands) {
  const auto help = Session::help_text();
  for (const char* command :
       {"new model", "mesh", "solve", "stresses", "store", "retrieve"}) {
    EXPECT_NE(help.find(command), std::string::npos) << command;
  }
}

TEST(Workspace, StorageAccounting) {
  Database db;
  Session session(db);
  EXPECT_EQ(session.workspace().storage_bytes(), 0u);
  session.execute("mesh plate nx=8 ny=4 load=1");
  const auto with_model = session.workspace().storage_bytes();
  EXPECT_GT(with_model, 0u);
  session.execute("solve tip-shear");
  EXPECT_GT(session.workspace().storage_bytes(), with_model);
}

}  // namespace
}  // namespace fem2::appvm
