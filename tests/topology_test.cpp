// Topology suite: window derivation, per-topology latency math, the
// contention-channel mapping, severed-variant parity with the FaultPlan
// machinery, and bitwise determinism of every topology across host thread
// counts (the TopologyDeterminism fixture is also re-run under tsan with
// FEM2_HOST_THREADS=4 in CI).
#include <gtest/gtest.h>

#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hw/fault.hpp"
#include "hw/machine.hpp"
#include "hw/topology.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "support/check.hpp"
#include "sysvm/os.hpp"

namespace fem2::hw {
namespace {

MachineConfig four_clusters() {
  MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 2;
  return config;
}

// --- window derivation ------------------------------------------------------

TEST(Topology, WindowEqualsMinLaunchDelayForEveryKind) {
  for (const auto& kind : topology_kinds()) {
    auto config = four_clusters();
    config.topology = make_topology(kind, config);
    Machine machine(config);
    EXPECT_EQ(machine.engine().window(),
              config.topology->min_launch_delay())
        << "topology=" << kind;
    EXPECT_EQ(machine.topology().name(), config.topology->name());
  }
}

TEST(Topology, NullTopologySelectsFlatSeedModel) {
  const auto config = four_clusters();
  Machine machine(config);  // config.topology left null
  EXPECT_EQ(machine.topology().name(), "flat");
  EXPECT_EQ(machine.engine().window(), config.network_base_latency);
  EXPECT_EQ(machine.topology().launch_delay(ClusterId{0}, ClusterId{1}, 0),
            config.network_base_latency);
  EXPECT_EQ(machine.topology().cycles_per_byte(ClusterId{0}, ClusterId{1}),
            config.network_cycles_per_byte);
}

TEST(Topology, ClusterCountMismatchIsRejected) {
  auto config = four_clusters();
  config.topology = std::make_shared<FlatTopology>(8, 100, 0.5);
  EXPECT_THROW(Machine{config}, support::CheckError);
}

TEST(Topology, UnknownKindIsRejected) {
  EXPECT_THROW(make_topology("torus", four_clusters()),
               support::CheckError);
}

// --- fat tree ---------------------------------------------------------------

TEST(Topology, FatTreeEdgeVsSpinePaths) {
  FatTreeTopology::Options opt;
  opt.pod_size = 2;
  opt.edge_latency = 100;
  opt.spine_latency = 240;
  opt.edge_cycles_per_byte = 0.5;
  opt.spine_cycles_per_byte = 1.0;
  const FatTreeTopology tree(4, opt);  // pods {0,1} and {2,3}

  EXPECT_EQ(tree.pods(), 2u);
  EXPECT_EQ(tree.min_launch_delay(), 100u);
  EXPECT_EQ(tree.max_launch_delay(), 240u);
  // Intra-pod: edge path, destination inbound channel.
  EXPECT_EQ(tree.launch_delay(ClusterId{0}, ClusterId{1}, 0), 100u);
  EXPECT_EQ(tree.cycles_per_byte(ClusterId{0}, ClusterId{1}), 0.5);
  EXPECT_EQ(tree.channel(ClusterId{0}, ClusterId{1}), 1u);
  // Inter-pod: spine path, source pod's uplink channel.
  EXPECT_EQ(tree.launch_delay(ClusterId{0}, ClusterId{3}, 0), 240u);
  EXPECT_EQ(tree.cycles_per_byte(ClusterId{0}, ClusterId{3}), 1.0);
  EXPECT_EQ(tree.channel(ClusterId{0}, ClusterId{3}), 4u);  // clusters + pod 0
  EXPECT_EQ(tree.channel(ClusterId{3}, ClusterId{0}), 5u);  // clusters + pod 1
  EXPECT_EQ(tree.channel_count(), 6u);
}

// --- rotor ------------------------------------------------------------------

TEST(Topology, RotorSlotWaitIsDeterministicInSendTime) {
  RotorTopology::Options opt;
  opt.base_latency = 100;
  opt.slot_cycles = 400;
  const RotorTopology rotor(4, opt);  // 3 matchings, revolution = 1200

  EXPECT_EQ(rotor.slots(), 3u);
  EXPECT_EQ(rotor.min_launch_delay(), 100u);
  // Matching 0 wires 0 -> 1 and is active on [0, 400).
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{1}, 0), 100u);
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{1}, 399), 100u);
  // Just after the slot: wait a whole revolution minus the phase.
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{1}, 400),
            100u + 800u);
  // Matching 1 wires 0 -> 2 on [400, 800): before it opens, wait the gap.
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{2}, 0), 100u + 400u);
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{2}, 400), 100u);
  // Phase wraps with the revolution.
  EXPECT_EQ(rotor.launch_delay(ClusterId{0}, ClusterId{1}, 1200), 100u);
  // Worst case bound holds.
  EXPECT_EQ(rotor.max_launch_delay(), 100u + 400u * 2 + 399u);
  for (const Cycles at : {0u, 123u, 400u, 799u, 1199u, 1200u, 5000u}) {
    for (std::uint32_t dst = 1; dst < 4; ++dst) {
      const auto d = rotor.launch_delay(ClusterId{0}, ClusterId{dst}, at);
      EXPECT_GE(d, rotor.min_launch_delay());
      EXPECT_LE(d, rotor.max_launch_delay());
    }
  }
  // Packets serialize on the source's optical port.
  EXPECT_EQ(rotor.channel(ClusterId{2}, ClusterId{0}), 2u);

  // A 2-cluster rotor is always wired.
  const RotorTopology pair(2, opt);
  EXPECT_EQ(pair.launch_delay(ClusterId{0}, ClusterId{1}, 777), 100u);
  EXPECT_EQ(pair.max_launch_delay(), 100u);
}

// --- degraded variants ------------------------------------------------------

TEST(Topology, BrownoutsScaleLatencyAndBandwidthOnly) {
  auto base = std::make_shared<FlatTopology>(4, 100, 0.5);
  const DegradedTopology degraded(
      base, {{ClusterId{0}, ClusterId{1}, 4, 4.0}});
  EXPECT_EQ(degraded.launch_delay(ClusterId{0}, ClusterId{1}, 0), 400u);
  EXPECT_EQ(degraded.cycles_per_byte(ClusterId{0}, ClusterId{1}), 2.0);
  // Untouched links and the window bound are the base topology's.
  EXPECT_EQ(degraded.launch_delay(ClusterId{1}, ClusterId{0}, 0), 100u);
  EXPECT_EQ(degraded.min_launch_delay(), 100u);
  EXPECT_EQ(degraded.max_launch_delay(), 400u);
  // A brownout that would speed a link up is rejected (window safety).
  EXPECT_THROW(DegradedTopology(base, {{ClusterId{0}, ClusterId{1}, 0, 0.5}}),
               support::CheckError);
}

// A topology with statically severed links must behave exactly like the
// same machine with the equivalent FaultPlan applied at t=0: identical
// metrics dump (deliveries, drops, traffic matrix, latency histogram).
TEST(Topology, SeveredVariantMatchesEquivalentFaultPlan) {
  const std::vector<std::pair<ClusterId, ClusterId>> severed = {
      {ClusterId{0}, ClusterId{1}}, {ClusterId{2}, ClusterId{3}}};
  const auto traffic = [](Machine& machine) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      for (std::uint32_t d = 0; d < 4; ++d) {
        if (s == d) continue;
        machine.send_packet(ClusterId{s}, ClusterId{d}, 64, {});
        machine.send_packet(ClusterId{s}, ClusterId{d}, 256, {});
      }
    }
    machine.engine().run();
  };

  auto severed_config = four_clusters();
  const auto degraded = std::make_shared<DegradedTopology>(
      std::make_shared<FlatTopology>(severed_config),
      std::vector<DegradedTopology::Brownout>{}, severed);
  severed_config.topology = degraded;
  Machine severed_machine(severed_config);
  traffic(severed_machine);

  Machine plan_machine(four_clusters());
  const FaultPlan plan = degraded->equivalent_fault_plan();
  FaultInjector injector(plan_machine, plan);
  injector.arm();
  // Drain the t=0 fail-link events before offering traffic, so the plan's
  // severing is in force from the first send — the construction-time state
  // the severed topology starts in.
  plan_machine.engine().run();
  traffic(plan_machine);

  EXPECT_GT(severed_machine.metrics().network.dropped_messages, 0u);
  EXPECT_EQ(severed_machine.metrics().dump(), plan_machine.metrics().dump());
}

// --- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, ExactBelowSixteenThenBounded) {
  LatencyHistogram h;
  for (Cycles v = 1; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(v), v);
  }
  for (const Cycles v : {16u, 100u, 1000u, 123456u}) {
    const auto index = LatencyHistogram::bucket_index(v);
    EXPECT_GE(LatencyHistogram::bucket_upper(index), v);
    // Relative bucket width stays within one sub-bucket (~6%).
    EXPECT_LE(static_cast<double>(LatencyHistogram::bucket_upper(index)),
              static_cast<double>(v) * (1.0 + 1.0 / 16.0) + 1.0);
  }
  h.record(10);
  h.record(20);
  h.record(300);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.min, 10u);
  EXPECT_EQ(h.max, 300u);
  EXPECT_DOUBLE_EQ(h.mean(), 110.0);
  EXPECT_EQ(h.quantile(0.0), 10u);
  EXPECT_GE(h.quantile(0.5), 20u);
  EXPECT_EQ(h.quantile(1.0), 300u);
}

TEST(LatencyHistogram, MachineRecordsDeliveries) {
  Machine machine(four_clusters());
  machine.send_packet(ClusterId{0}, ClusterId{1}, 64, {});
  machine.send_packet(ClusterId{1}, ClusterId{2}, 64, {});
  machine.send_packet(ClusterId{2}, ClusterId{2}, 64, {});  // local: no sample
  machine.engine().run();
  const auto& latency = machine.metrics().network.latency;
  EXPECT_EQ(latency.count, 2u);
  EXPECT_GE(latency.min, machine.engine().window());
}

// --- determinism ------------------------------------------------------------

// Bitwise determinism for every topology: the same distributed solve at 1,
// 2 and 8 host threads must produce byte-identical machine metrics dumps
// (which include the latency histogram) and bit-identical displacements.
TEST(TopologyDeterminism, BitwiseAcrossThreadCountsForEveryKind) {
  fem::PlateMeshOptions mesh;
  mesh.nx = 12;
  mesh.ny = 6;
  mesh.width = 1.5;
  mesh.height = 0.75;
  const auto model = fem::make_cantilever_plate(mesh, 1'000.0);

  for (const auto& kind : topology_kinds()) {
    auto config = four_clusters();
    config.topology = make_topology(kind, config);

    struct Outcome {
      Cycles elapsed = 0;
      std::string machine_dump;
      std::string os_dump;
      std::vector<double> displacements;
    };
    const auto run = [&](unsigned threads) {
      Machine machine(config);
      machine.engine().set_threads(threads);
      sysvm::Os os(machine);
      navm::Runtime runtime(os);
      navm::register_parallel_ops(runtime);
      const auto solution = fem::solve_static_parallel(
          model, "tip-shear", runtime, {.workers = 8, .tolerance = 1e-8});
      Outcome outcome;
      outcome.elapsed = machine.now();
      outcome.machine_dump = machine.metrics().dump();
      outcome.os_dump = os.metrics().dump();
      outcome.displacements = solution.displacements.values;
      return outcome;
    };

    const auto base = run(1);
    ASSERT_GT(base.elapsed, 0u) << "topology=" << kind;
    for (const unsigned threads : {2u, 8u}) {
      const auto other = run(threads);
      EXPECT_EQ(other.elapsed, base.elapsed)
          << "topology=" << kind << " threads=" << threads;
      EXPECT_EQ(other.machine_dump, base.machine_dump)
          << "topology=" << kind << " threads=" << threads;
      EXPECT_EQ(other.os_dump, base.os_dump)
          << "topology=" << kind << " threads=" << threads;
      EXPECT_EQ(other.displacements, base.displacements)
          << "topology=" << kind << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace fem2::hw
