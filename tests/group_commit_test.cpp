// Group-commit tests: concurrent transactions batched into one WAL fsync
// must keep every durability and concurrency promise the classic
// one-fsync-per-commit path makes.  The acceptance property is the same
// as fem2-db's: after any crash or injected fault, recovery sees exactly
// the acknowledged commits — nothing lost, nothing phantom — proved here
// over logs produced by real multi-member batches (a byte-level
// crash-point sweep across batched frames), plus batch fsync failures
// that must fail every member cleanly and leave the engine fail-safe.
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/engine.hpp"
#include "db/iofault.hpp"
#include "db/query.hpp"

namespace fs = std::filesystem;
using namespace fem2;

namespace {

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("fem2_gc_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
  std::string str() const { return path.string(); }
};

db::EngineOptions grouped_options(const TempDir& dir,
                                  std::chrono::microseconds window =
                                      std::chrono::milliseconds(20),
                                  std::size_t max_batch = 64) {
  db::EngineOptions options;
  options.directory = dir.str();
  options.compact_after_bytes = 0;  // keep every record in the log
  options.group_commit_window = window;
  options.group_commit_max_batch = max_batch;
  return options;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

// ---------------------------------------------------------------------------
// Batch formation and acknowledgement

TEST(GroupCommit, ConcurrentAutocommitsShareBatches) {
  TempDir dir("batching");
  db::Engine engine(grouped_options(dir));

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOps = 20;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      for (std::size_t op = 0; op < kOps; ++op) {
        const std::string name =
            "obj-" + std::to_string(t) + "-" + std::to_string(op);
        const std::uint64_t revision = engine.put(name, "model", "v");
        EXPECT_EQ(revision, 1u);  // distinct names: first revision each
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.commits, kThreads * kOps);
  // Every commit went through the group path...
  EXPECT_EQ(stats.group_batched_txns, kThreads * kOps);
  EXPECT_GE(stats.group_batches, 1u);
  // ...and the whole point: fewer fsync barriers than commits.
  EXPECT_LE(stats.group_batches, stats.commits);
  EXPECT_GE(stats.group_max_batch, 1u);
  EXPECT_EQ(engine.size(), kThreads * kOps);
}

TEST(GroupCommit, SingleCommitterStillAcksAfterWindow) {
  TempDir dir("single");
  db::Engine engine(grouped_options(dir, std::chrono::milliseconds(1)));
  EXPECT_EQ(engine.put("alone", "model", "v1"), 1u);
  EXPECT_EQ(engine.put("alone", "model", "v2", 1), 2u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.group_batched_txns, 2u);
  EXPECT_EQ(stats.group_batches, 2u);  // nobody to share with
}

TEST(GroupCommit, RecoverySeesAllAckedBatchedCommits) {
  TempDir dir("recovery");
  {
    db::Engine engine(grouped_options(dir));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&engine, t] {
        for (std::size_t op = 0; op < 10; ++op)
          engine.put("obj-" + std::to_string(t) + "-" + std::to_string(op),
                     "model", "payload-" + std::to_string(op));
      });
    }
    for (auto& thread : threads) thread.join();
  }
  db::EngineOptions reopened;
  reopened.directory = dir.str();
  db::Engine engine(reopened);
  EXPECT_EQ(engine.size(), 40u);
  EXPECT_EQ(engine.get("obj-3-9").value().value, "payload-9");
}

// ---------------------------------------------------------------------------
// Pending heads: validation must see appended-but-unsynced batches

TEST(GroupCommit, ConflictsValidateAgainstPendingHeads) {
  TempDir dir("pending");
  // A long window parks the first committer's batch in flight.
  db::Engine engine(grouped_options(dir, std::chrono::milliseconds(200)));

  std::thread first([&engine] {
    EXPECT_EQ(engine.put("contested", "model", "first", 0), 1u);
  });
  // Deterministic rendezvous: the head is claimed the moment the member's
  // frames are appended, observable through EngineState::pending_heads.
  while (engine.state().pending_heads == 0)
    std::this_thread::yield();

  // The first batch has not fsynced yet, but `expected = 0 (must not
  // exist)` must already fail — otherwise two creators could both ack.
  EXPECT_THROW(engine.put("contested", "model", "second", 0),
               db::ConflictError);
  // And a CAS against the pending revision must chain onto it.
  EXPECT_EQ(engine.put("contested", "model", "third", 1), 2u);
  first.join();

  EXPECT_EQ(engine.stats().conflicts, 1u);
  EXPECT_EQ(engine.get("contested").value().value, "third");
  EXPECT_EQ(engine.state().pending_heads, 0u);  // all applied
}

// ---------------------------------------------------------------------------
// Fault injection: a failed batch fsync fails every member cleanly

TEST(GroupCommit, BatchFsyncFailureFailsEveryMemberAndDegrades) {
  TempDir dir("fsync_fail");
  auto vfs = std::make_shared<db::FaultVfs>();
  db::EngineOptions options =
      grouped_options(dir, std::chrono::milliseconds(100));
  options.vfs = vfs;
  db::Engine engine(options);

  engine.put("durable", "model", "before");  // a healthy baseline commit
  // Fail the NEXT fsync, whichever batch issues it.
  db::IoFaultPlan plan;
  plan.fail(db::IoOp::Fsync, vfs->counts().fsync);
  vfs->set_plan(plan);

  constexpr std::size_t kMembers = 4;
  std::atomic<std::size_t> io_errors{0};
  std::atomic<std::size_t> degraded_rejects{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kMembers; ++t) {
    threads.emplace_back([&engine, &io_errors, &degraded_rejects, t] {
      try {
        engine.put("member-" + std::to_string(t), "model", "doomed");
      } catch (const db::IoError& error) {
        EXPECT_EQ(error.op(), db::IoOp::Fsync);
        io_errors += 1;
      } catch (const db::DegradedError&) {
        // A member arriving after the batch already failed is turned away
        // at the door instead — still a clean, unacked failure.
        degraded_rejects += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every member of the failed batch (and any batch queued behind it)
  // got a clean error — no silent ack, no hang — and the shared fsync
  // failure reached at least the batch that issued it.
  EXPECT_EQ(io_errors.load() + degraded_rejects.load(), kMembers);
  EXPECT_GE(io_errors.load(), 1u);
  // The fsync gate held: an unsynced commit may never be acked, so the
  // engine goes read-only (sticky degraded) instead of carrying on.
  EXPECT_TRUE(engine.degraded());
  EXPECT_THROW(engine.put("after", "model", "rejected"), db::DegradedError);
  // Reads stay live in degraded mode, and no doomed member is visible.
  EXPECT_EQ(engine.get("durable").value().value, "before");
  for (std::size_t t = 0; t < kMembers; ++t)
    EXPECT_FALSE(engine.contains("member-" + std::to_string(t)));

  // recover() replays the durable image: exactly the acked commits.
  engine.recover();
  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.size(), 1u);
  EXPECT_EQ(engine.put("after", "model", "accepted"), 1u);
}

TEST(GroupCommit, AppendFailureRollsBackOnlyThatMember) {
  TempDir dir("append_fail");
  auto vfs = std::make_shared<db::FaultVfs>();
  db::EngineOptions options =
      grouped_options(dir, std::chrono::milliseconds(1));
  options.vfs = vfs;
  db::Engine engine(options);

  engine.put("keep", "model", "v1");
  db::IoFaultPlan plan;
  plan.fail(db::IoOp::Write, vfs->counts().write);
  vfs->set_plan(plan);

  // The torn append is sheared off before the batch ever forms: the
  // failing transaction throws, the engine stays writable.
  EXPECT_THROW(engine.put("torn", "model", "gone"), db::IoError);
  EXPECT_FALSE(engine.degraded());
  EXPECT_FALSE(engine.contains("torn"));
  EXPECT_EQ(engine.put("keep", "model", "v2", 1), 2u);

  // And the log is still perfectly replayable.
  db::EngineOptions reopened;
  reopened.directory = dir.str();
  reopened.vfs = std::make_shared<db::FaultVfs>();
  db::Engine recovered(reopened);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.get("keep").value().value, "v2");
}

TEST(GroupCommit, CrashToDurableKeepsExactlyAckedCommits) {
  TempDir dir("crash_durable");
  auto vfs = std::make_shared<db::FaultVfs>();
  std::map<std::string, std::uint64_t> acked;
  std::mutex acked_mutex;
  {
    db::EngineOptions options = grouped_options(dir);
    options.vfs = vfs;
    db::Engine engine(options);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t op = 0; op < 8; ++op) {
          const std::string name =
              "n-" + std::to_string(t) + "-" + std::to_string(op);
          const std::uint64_t revision = engine.put(name, "model", "v");
          std::lock_guard lock(acked_mutex);
          acked[name] = revision;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  // Power loss: only what an honest fsync covered survives.  Every ack
  // above came AFTER its batch's fsync, so nothing may go missing.
  vfs->crash_to_durable();

  db::EngineOptions reopened;
  reopened.directory = dir.str();
  db::Engine engine(reopened);
  EXPECT_EQ(engine.size(), acked.size());
  for (const auto& [name, revision] : acked)
    EXPECT_EQ(engine.revision_of(name), revision) << name;
}

// ---------------------------------------------------------------------------
// The crash-point sweep over a batched log: cut the WAL at EVERY byte
// boundary (frame boundaries of multi-transaction batches included) and
// require that recovery yields a state where each object sits at some
// prefix of its acked revisions, with exactly the acked payload for
// whatever revision survived, and multi-write transactions are atomic.

TEST(GroupCommit, CrashPointSweepAcrossBatchedFrames) {
  TempDir dir("sweep");
  // value each (name, revision) was acked with, for phantom detection.
  std::map<std::pair<std::string, std::uint64_t>, std::string> acked;
  std::mutex acked_mutex;
  // multi-write transactions: (name-a, rev-a, name-b, rev-b) atomic pairs.
  std::vector<std::array<std::uint64_t, 2>> pair_revisions;
  const std::vector<std::string> pair_names = {"atomic-a", "atomic-b"};

  db::EngineOptions options = grouped_options(dir);
  options.sync_on_commit = true;  // group commit requires the fsync gate
  std::map<std::string, std::uint64_t> final_revisions;
  {
    db::Engine engine(options);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t op = 0; op < 6; ++op) {
          const std::string name = "s-" + std::to_string(t);
          const std::string value =
              "t" + std::to_string(t) + "-op" + std::to_string(op);
          const std::uint64_t revision =
              engine.put(name, "model", value);
          std::lock_guard lock(acked_mutex);
          acked[{name, revision}] = value;
        }
      });
    }
    // Interleave multi-write transactions so their frames land inside
    // batches shared with the autocommitters.
    for (std::size_t round = 0; round < 4; ++round) {
      const std::uint64_t txn = engine.begin();
      engine.put(txn, pair_names[0], "model", "pair-" + std::to_string(round));
      engine.put(txn, pair_names[1], "model", "pair-" + std::to_string(round));
      engine.commit(txn);
      std::array<std::uint64_t, 2> revisions{};
      for (std::size_t i = 0; i < 2; ++i) {
        revisions[i] = engine.revision_of(pair_names[i]);
        std::lock_guard lock(acked_mutex);
        acked[{pair_names[i], revisions[i]}] = "pair-" + std::to_string(round);
      }
      pair_revisions.push_back(revisions);
    }
    for (auto& thread : threads) thread.join();
    for (const auto& entry : engine.list())
      final_revisions[entry.name] = entry.revision;
    const auto stats = engine.stats();
    ASSERT_EQ(stats.group_batched_txns, stats.commits);
  }

  const std::string log = read_file(dir.path / "wal.f2db");
  ASSERT_GT(log.size(), 0u);

  TempDir scratch("sweep_cut");
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    const fs::path crash_dir = scratch.path / std::to_string(cut);
    fs::create_directories(crash_dir);
    write_file(crash_dir / "wal.f2db", std::string_view(log).substr(0, cut));

    db::EngineOptions crash_options;
    crash_options.directory = crash_dir.string();
    db::Engine recovered(crash_options);  // recovery must never fail

    for (const auto& entry : recovered.list()) {
      // Prefix property: a recovered revision never exceeds what was
      // acked, and carries exactly the payload acked at that revision.
      const auto final_it = final_revisions.find(entry.name);
      ASSERT_NE(final_it, final_revisions.end())
          << "phantom object '" << entry.name << "' at cut " << cut;
      ASSERT_LE(entry.revision, final_it->second) << "cut " << cut;
      const auto acked_it = acked.find({entry.name, entry.revision});
      ASSERT_NE(acked_it, acked.end())
          << "unacked revision " << entry.revision << " of '" << entry.name
          << "' at cut " << cut;
      ASSERT_EQ(recovered.get(entry.name).value().value, acked_it->second)
          << "cut " << cut;
    }
    // Atomicity: both writes of a committed pair transaction become
    // visible together — a cut can never show one without the other.
    for (const auto& revisions : pair_revisions) {
      const bool a_visible =
          recovered.revision_of(pair_names[0]) >= revisions[0];
      const bool b_visible =
          recovered.revision_of(pair_names[1]) >= revisions[1];
      ASSERT_EQ(a_visible, b_visible)
          << "torn pair transaction at cut " << cut;
    }
    // The full log recovers to exactly the final acked state.
    if (cut == log.size()) {
      ASSERT_EQ(recovered.list().size(), final_revisions.size());
      for (const auto& [name, revision] : final_revisions)
        ASSERT_EQ(recovered.revision_of(name), revision) << name;
    }
    fs::remove_all(crash_dir);
  }
}

// ---------------------------------------------------------------------------
// Maintenance under load: checkpoint/recover drain in-flight batches

TEST(GroupCommit, CheckpointDrainsInFlightBatches) {
  TempDir dir("checkpoint");
  db::Engine engine(grouped_options(dir, std::chrono::milliseconds(2)));

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 3; ++t) {
    writers.emplace_back([&engine, &stop, t] {
      for (std::size_t op = 0; !stop.load(); ++op)
        engine.put("w-" + std::to_string(t), "model", std::to_string(op));
    });
  }
  for (int i = 0; i < 5; ++i) engine.checkpoint();
  stop.store(true);
  for (auto& writer : writers) writer.join();
  engine.checkpoint();

  // Nothing wedged, and a fresh engine agrees with the live one.
  const auto live = engine.list();
  db::EngineOptions reopened;
  reopened.directory = dir.str();
  db::Engine recovered(reopened);
  ASSERT_EQ(recovered.list().size(), live.size());
  for (const auto& entry : live)
    EXPECT_EQ(recovered.revision_of(entry.name), entry.revision);
}
