// Cross-layer integration tests: full engineer workflows down through all
// four virtual machines, agreement between sequential / substructured /
// distributed solution paths, and determinism of the simulator.
#include <gtest/gtest.h>

#include "appvm/command.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "fem/passembly.hpp"
#include "fem/substructure.hpp"
#include "navm/parops.hpp"
#include "spec/layers.hpp"
#include "spec/reflect.hpp"

namespace fem2 {
namespace {

hw::MachineConfig machine_config(std::size_t clusters = 4,
                                 std::size_t ppc = 4) {
  hw::MachineConfig c;
  c.clusters = clusters;
  c.pes_per_cluster = ppc;
  c.memory_per_cluster = 64u << 20;
  return c;
}

struct Fem2Stack {
  hw::Machine machine;
  sysvm::Os os;
  navm::Runtime runtime;

  explicit Fem2Stack(hw::MachineConfig config = machine_config())
      : machine(config), os(machine), runtime(os) {
    navm::register_parallel_ops(runtime);
    fem::register_substructure_tasks(runtime);
  }
};

TEST(Integration, AllSolutionPathsAgree) {
  const auto model = fem::make_cantilever_plate(
      {.nx = 16, .ny = 6, .material = {.youngs_modulus = 70e9,
                                       .thickness = 0.004}},
      1'500.0);
  const std::size_t tip_dof = model.total_dofs() - 1;

  const auto direct = fem::solve_static(
      model, "tip-shear", {.kind = fem::SolverKind::SkylineDirect});

  // Sequential iterative.
  const auto cg = fem::solve_static(
      model, "tip-shear",
      {.kind = fem::SolverKind::PreconditionedCg, .tolerance = 1e-12});

  // Substructured, sequential and on the machine.
  const auto partition = fem::partition_by_x(model, 4);
  const auto sub = fem::solve_substructured(model, "tip-shear", partition);

  Fem2Stack sub_stack;
  const auto sub_par = fem::solve_substructured_parallel(
      model, "tip-shear", partition, sub_stack.runtime);

  // Distributed CG on the machine.
  Fem2Stack cg_stack;
  const auto cg_par = fem::solve_static_parallel(
      model, "tip-shear", cg_stack.runtime, {.workers = 8,
                                             .tolerance = 1e-12});

  const double reference = direct.displacements.values[tip_dof];
  const double tolerance = std::abs(reference) * 1e-5 + 1e-12;
  for (const auto* solution : {&cg, &sub, &sub_par, &cg_par}) {
    EXPECT_NEAR(solution->displacements.values[tip_dof], reference,
                tolerance)
        << solution->stats.method;
  }
}

TEST(Integration, EngineerWorkflowThroughCommandLanguage) {
  appvm::Database db;
  appvm::Session session(db);
  const auto responses = session.execute_script(R"(
mesh plate nx=12 ny=6 load=500
solve tip-shear using skyline
stresses
store panel
store results panel-v1
retrieve panel
solve tip-shear using pcg tol=1e-11
stresses
)");
  for (const auto& r : responses) EXPECT_TRUE(r.ok) << r.text;
  EXPECT_EQ(db.list().size(), 2u);
}

TEST(Integration, SimulationIsDeterministic) {
  const auto model = fem::make_cantilever_plate({.nx = 12, .ny = 4}, 100.0);

  auto run_once = [&] {
    Fem2Stack stack;
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", stack.runtime, {.workers = 6});
    struct Snapshot {
      hw::Cycles elapsed;
      std::uint64_t messages;
      std::uint64_t bytes;
      std::uint64_t dispatches;
      std::size_t iterations;
      double tip;
    };
    return Snapshot{stack.machine.now(),
                    stack.os.metrics().total_messages(),
                    stack.os.metrics().total_message_bytes(),
                    stack.os.metrics().kernel_dispatches,
                    solution.stats.iterations,
                    solution.displacements.values.back()};
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.tip, b.tip);
}

TEST(Integration, ConcurrentIndependentProblemsBothComplete) {
  // User-level parallelism: two different models solved on one machine.
  Fem2Stack stack;
  const auto plate = fem::make_cantilever_plate({.nx = 8, .ny = 4}, 50.0);
  const auto truss = fem::make_truss_bridge({.bays = 6}, 10.0);

  auto launch = [&](const fem::StructureModel& model,
                    const std::string& load_set) {
    const auto system = fem::assemble(model);
    navm::CgProblem problem;
    problem.a = system.stiffness;
    problem.b = system.load_vector(model.load_sets.at(load_set));
    problem.workers = 4;
    problem.tolerance = 1e-10;
    return stack.runtime.launch(navm::kCgDriverTask,
                                navm::make_cg_problem(std::move(problem)));
  };
  const auto t1 = launch(plate, "tip-shear");
  const auto t2 = launch(truss, "deck");
  stack.runtime.run();
  ASSERT_TRUE(stack.os.task_finished(t1));
  ASSERT_TRUE(stack.os.task_finished(t2));
  EXPECT_TRUE(navm::as_cg_result(stack.runtime.result(t1)).converged);
  EXPECT_TRUE(navm::as_cg_result(stack.runtime.result(t2)).converged);
}

TEST(Integration, MachineStateConformsToHardwareGrammarAfterSolve) {
  Fem2Stack stack;
  const auto model = fem::make_cantilever_plate({.nx = 8, .ny = 4}, 50.0);
  (void)fem::solve_static_parallel(model, "tip-shear", stack.runtime,
                                   {.workers = 4});
  hgraph::HGraph g;
  const auto node = spec::reflect_machine(g, stack.machine);
  const auto check = spec::hw_grammar().conforms(g, node, "machine");
  EXPECT_TRUE(check) << check.error;

  hgraph::HGraph g2;
  const auto tasks = spec::reflect_task_system(g2, stack.os, stack.runtime);
  const auto task_check =
      spec::navm_grammar().conforms(g2, tasks, "tasksystem");
  EXPECT_TRUE(task_check) << task_check.error;
}

TEST(Integration, ParallelAssemblyMatchesSequential) {
  const auto model = fem::make_cantilever_plate({.nx = 10, .ny = 5}, 80.0);
  const auto sequential = fem::assemble(model);

  for (const std::uint32_t workers : {1u, 3u, 8u}) {
    Fem2Stack stack;
    fem::register_assembly_tasks(stack.runtime);
    fem::ParallelAssemblyStats stats;
    const auto parallel =
        fem::assemble_parallel(model, stack.runtime, workers, &stats);
    EXPECT_EQ(stats.workers, workers);
    EXPECT_GT(stats.elapsed, 0u);
    EXPECT_GT(stats.triplets, 0u);

    ASSERT_EQ(parallel.stiffness.rows(), sequential.stiffness.rows());
    // Merge order differs across workers, so entries that cancel exactly in
    // one summation order may survive as rounding dust in the other —
    // compare by value, not by sparsity pattern.
    la::DenseMatrix diff = parallel.stiffness.to_dense();
    diff.add_scaled(sequential.stiffness.to_dense(), -1.0);
    EXPECT_LT(diff.max_abs(),
              1e-9 * sequential.stiffness.to_dense().max_abs());
  }
}

TEST(Integration, ParallelStressRecoveryMatchesSequential) {
  const auto model = fem::make_cantilever_plate({.nx = 9, .ny = 4}, 60.0);
  const auto solution = fem::solve_static(model, "tip-shear");
  const auto sequential =
      fem::compute_stresses(model, solution.displacements);

  Fem2Stack stack;
  fem::register_stress_tasks(stack.runtime);
  fem::ParallelStressStats stats;
  const auto parallel = fem::compute_stresses_parallel(
      model, solution.displacements, stack.runtime, 5, &stats);
  EXPECT_GT(stats.elapsed, 0u);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].element, sequential[i].element);
    EXPECT_DOUBLE_EQ(parallel[i].von_mises, sequential[i].von_mises);
    EXPECT_DOUBLE_EQ(parallel[i].sigma_xx, sequential[i].sigma_xx);
  }
}

TEST(Integration, FullPipelineOnTheMachine) {
  // assemble → solve → compare against the pure-host pipeline.
  const auto model = fem::make_cantilever_plate({.nx = 12, .ny = 4}, 120.0);
  Fem2Stack stack;
  fem::register_assembly_tasks(stack.runtime);

  const auto system = fem::assemble_parallel(model, stack.runtime, 6);
  navm::CgProblem problem;
  problem.a = system.stiffness;
  problem.b = system.load_vector(model.load_sets.at("tip-shear"));
  problem.workers = 6;
  problem.tolerance = 1e-11;
  const auto task = stack.runtime.launch(navm::kCgDriverTask,
                                         navm::make_cg_problem(problem));
  stack.runtime.run();
  ASSERT_TRUE(stack.os.task_finished(task));
  const auto& result = navm::as_cg_result(stack.runtime.result(task));
  ASSERT_TRUE(result.converged);

  const auto host = fem::solve_static(
      model, "tip-shear",
      {.kind = fem::SolverKind::DenseCholesky});
  const auto machine_solution = system.expand(result.x);
  for (std::size_t i = 0; i < host.displacements.values.size(); ++i) {
    EXPECT_NEAR(machine_solution.values[i], host.displacements.values[i],
                1e-8 + std::abs(host.displacements.values[i]) * 1e-5);
  }
}

TEST(Integration, PacketConservationEvenUnderFaults) {
  // Every packet sent is eventually delivered (count conservation), even
  // with PEs failing mid-run; and when the machine idles, no queue holds
  // unprocessed packets.
  Fem2Stack stack;
  const auto model = fem::make_cantilever_plate({.nx = 12, .ny = 4}, 90.0);
  stack.machine.engine().schedule(200'000, [&] {
    stack.machine.fail_pe(hw::PeId{hw::ClusterId{1}, 1});
  });
  (void)fem::solve_static_parallel(model, "tip-shear", stack.runtime,
                                   {.workers = 6});
  const auto& metrics = stack.machine.metrics();
  std::uint64_t out = 0, in = 0;
  for (const auto& c : metrics.clusters) {
    out += c.packets_out;
    in += c.packets_in;
  }
  EXPECT_EQ(out, in);
  for (std::uint32_t c = 0; c < stack.machine.cluster_count(); ++c)
    EXPECT_EQ(stack.machine.queue_depth(hw::ClusterId{c}), 0u);
  // Busy cycles never exceed wall-clock per PE.
  for (const auto& pe : metrics.pes)
    EXPECT_LE(pe.busy_cycles, stack.machine.now());
}

TEST(Integration, HeapsDrainAfterAllTasksFinish) {
  Fem2Stack stack;
  const auto model = fem::make_cantilever_plate({.nx = 10, .ny = 4}, 75.0);
  (void)fem::solve_static_parallel(model, "tip-shear", stack.runtime,
                                   {.workers = 6});
  EXPECT_EQ(stack.os.live_tasks(), 0u);
  for (std::uint32_t c = 0; c < stack.machine.cluster_count(); ++c) {
    const hw::ClusterId cluster{c};
    EXPECT_EQ(stack.os.heap(cluster).in_use(), 0u) << "cluster " << c;
    EXPECT_EQ(stack.machine.memory_in_use(cluster), 0u) << "cluster " << c;
    stack.os.heap(cluster).check_invariants();
  }
}

TEST(Integration, LargerMachineSolvesFasterInSimulatedTime) {
  const auto model = fem::make_cantilever_plate({.nx = 24, .ny = 8}, 200.0);
  auto elapsed_with = [&](std::size_t clusters, std::size_t ppc,
                          std::uint32_t workers) {
    Fem2Stack stack(machine_config(clusters, ppc));
    (void)fem::solve_static_parallel(model, "tip-shear", stack.runtime,
                                     {.workers = workers});
    return stack.machine.now();
  };
  const auto small = elapsed_with(1, 2, 1);
  const auto large = elapsed_with(4, 8, 8);
  EXPECT_LT(large, small);
}

}  // namespace
}  // namespace fem2
