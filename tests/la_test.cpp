#include <gtest/gtest.h>

#include <cmath>

#include "la/dense.hpp"
#include "la/iterative.hpp"
#include "la/skyline.hpp"
#include "la/sparse.hpp"
#include "la/vec_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace fem2::la {
namespace {

CsrMatrix laplacian_1d(std::size_t n) {
  TripletBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

/// Random SPD matrix A = Bᵀ B + n·I (dense), also returned as CSR.
std::pair<DenseMatrix, CsrMatrix> random_spd(std::size_t n,
                                             std::uint64_t seed) {
  support::Rng rng(seed);
  DenseMatrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1, 1);
  DenseMatrix a = b.transpose().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  TripletBuilder tb(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (a(r, c) != 0.0) tb.add(r, c, a(r, c));
  return {a, tb.build()};
}

TEST(VecOps, DotAxpyNorm) {
  Vector x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{6, 9, 12}));
  EXPECT_DOUBLE_EQ(norm2(Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7, 3}), 7.0);
  EXPECT_EQ(subtract(y, x), (Vector{5, 7, 9}));
  EXPECT_EQ(add(x, x), (Vector{2, 4, 6}));
}

TEST(Dense, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const auto y = a.multiply(Vector{1, 1, 1});
  EXPECT_EQ(y, (Vector{6, 15}));
  const auto yt = a.multiply_transpose(Vector{1, 1});
  EXPECT_EQ(yt, (Vector{5, 7, 9}));
  const auto at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  const auto prod = a.multiply(at);  // 2x2
  EXPECT_DOUBLE_EQ(prod(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 32.0);
}

TEST(Dense, LuSolvesAndDeterminant) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 4; a(1, 1) = -6; a(1, 2) = 0;
  a(2, 0) = -2; a(2, 1) = 7; a(2, 2) = 2;
  LuFactorization lu(a);
  const auto x = lu.solve(Vector{5, -2, 9});
  const auto r = subtract(a.multiply(x), Vector{5, -2, 9});
  EXPECT_LT(norm2(r), 1e-12);
  EXPECT_NEAR(lu.determinant(), -16.0, 1e-9);
}

TEST(Dense, LuRejectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, support::Error);
}

TEST(Dense, CholeskyMatchesLu) {
  const auto [a, csr] = random_spd(12, 17);
  (void)csr;
  Vector rhs(12);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] = static_cast<double>(i) - 5.0;
  CholeskyFactorization chol(a);
  LuFactorization lu(a);
  const auto x1 = chol.solve(rhs);
  const auto x2 = lu.solve(rhs);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Dense, CholeskyRejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyFactorization{a}, support::Error);
}

TEST(Sparse, BuilderSumsDuplicatesAndDropsZeros) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 0, 5.0);
  b.add(1, 0, -5.0);
  b.add(0, 1, 0.0);  // dropped at insert
  const auto m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);  // the (1,0) pair cancelled
  EXPECT_DOUBLE_EQ(m.value_at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 0), 0.0);
}

TEST(Sparse, MatvecMatchesDense) {
  const auto [dense, csr] = random_spd(15, 23);
  Vector x(15);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(double(i));
  const auto y1 = csr.multiply(x);
  const auto y2 = dense.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-10);
}

TEST(Sparse, MultiplyRowsSubrange) {
  const auto a = laplacian_1d(10);
  Vector x(10, 1.0);
  Vector y(4, 0.0);
  a.multiply_rows(x, 3, 7, y);
  const auto full = a.multiply(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], full[3 + i]);
}

TEST(Sparse, DiagonalAndSymmetry) {
  const auto a = laplacian_1d(6);
  const auto d = a.diagonal();
  for (const double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Skyline, MatchesDenseCholesky) {
  const auto a = laplacian_1d(20);
  Vector rhs(20, 1.0);
  auto sky = SkylineMatrix::from_csr(a);
  EXPECT_EQ(sky.size(), 20u);
  sky.factorize();
  const auto x1 = sky.solve(rhs);
  CholeskyFactorization chol(a.to_dense());
  const auto x2 = chol.solve(rhs);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Skyline, RandomSpdProfileSolve) {
  const auto [dense, csr] = random_spd(18, 31);
  (void)dense;
  Vector rhs(18);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = double(i % 5) - 2.0;
  auto sky = SkylineMatrix::from_csr(csr);
  sky.factorize();
  const auto x = sky.solve(rhs);
  EXPECT_LT(relative_residual(csr, x, rhs), 1e-10);
}

TEST(Skyline, StorageSmallerThanDenseForBanded) {
  const auto a = laplacian_1d(100);
  const auto sky = SkylineMatrix::from_csr(a);
  EXPECT_LT(sky.storage_bytes(), 100 * 100 * sizeof(double) / 10);
  EXPECT_EQ(sky.max_column_height(), 2u);
}

// --- parameterized solver agreement sweep ---------------------------------

struct IterativeCase {
  const char* name;
  std::function<SolveResult(const CsrMatrix&, std::span<const double>,
                            const SolveOptions&)>
      run;
};

class IterativeSolvers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IterativeSolvers, AllConvergeOnRandomSpd) {
  const auto seed = GetParam();
  const auto [dense, csr] = random_spd(24, seed);
  (void)dense;
  Vector rhs(24);
  support::Rng rng(seed ^ 0xabcd);
  for (auto& v : rhs) v = rng.uniform(-2, 2);

  SolveOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 50'000;

  const auto reference = CholeskyFactorization(csr.to_dense()).solve(rhs);

  for (const auto& solver : std::vector<IterativeCase>{
           {"cg", [](const auto& a, auto b, const auto& o) {
              return conjugate_gradient(a, b, o);
            }},
           {"pcg", [](const auto& a, auto b, const auto& o) {
              auto opts = o;
              opts.jacobi_preconditioner = true;
              return conjugate_gradient(a, b, opts);
            }},
           {"jacobi", [](const auto& a, auto b, const auto& o) {
              return jacobi(a, b, o);
            }},
           {"gs", [](const auto& a, auto b, const auto& o) {
              return sor(a, b, o);
            }},
           {"sor", [](const auto& a, auto b, const auto& o) {
              auto opts = o;
              opts.sor_omega = 1.3;
              return sor(a, b, opts);
            }}}) {
    const auto result = solver.run(csr, rhs, options);
    EXPECT_TRUE(result.report.converged) << solver.name << ": "
                                         << result.report.to_string();
    for (std::size_t i = 0; i < rhs.size(); ++i)
      EXPECT_NEAR(result.x[i], reference[i], 1e-6) << solver.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterativeSolvers,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Iterative, CgIterationCountScalesWithConditioning) {
  // 1-D Laplacian: CG needs more iterations as n grows.
  SolveOptions options;
  options.tolerance = 1e-10;
  Vector small_rhs(16, 1.0), large_rhs(256, 1.0);
  const auto small = conjugate_gradient(laplacian_1d(16), small_rhs, options);
  const auto large = conjugate_gradient(laplacian_1d(256), large_rhs, options);
  ASSERT_TRUE(small.report.converged);
  ASSERT_TRUE(large.report.converged);
  EXPECT_LT(small.report.iterations, large.report.iterations);
}

TEST(Iterative, ZeroRhsConvergesImmediately) {
  const auto a = laplacian_1d(8);
  Vector zero(8, 0.0);
  for (const auto& result :
       {conjugate_gradient(a, zero), jacobi(a, zero), sor(a, zero)}) {
    EXPECT_TRUE(result.report.converged);
    EXPECT_EQ(result.report.iterations, 0u);
    EXPECT_EQ(norm2(result.x), 0.0);
  }
}

TEST(Iterative, ReportsNonConvergence) {
  SolveOptions options;
  options.tolerance = 1e-14;
  options.max_iterations = 2;
  Vector rhs(64, 1.0);
  const auto result = conjugate_gradient(laplacian_1d(64), rhs, options);
  EXPECT_FALSE(result.report.converged);
  EXPECT_EQ(result.report.iterations, 2u);
}

}  // namespace
}  // namespace fem2::la
