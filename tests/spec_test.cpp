// Executable formal-specification tests: every live implementation state
// reachable in the tests must be in the language of its layer's H-graph
// grammar — the paper's "formal definitions used as the basis for
// simulations" enforced mechanically.
#include <gtest/gtest.h>

#include "appvm/command.hpp"
#include "fem/analysis.hpp"
#include "fem/mesh.hpp"
#include "navm/parops.hpp"
#include "spec/layers.hpp"
#include "spec/reflect.hpp"
#include "spec/transforms.hpp"

namespace fem2::spec {
namespace {

TEST(Grammars, AllFiveLayersParseAndValidate) {
  EXPECT_TRUE(appvm_grammar().validate());
  EXPECT_TRUE(db_grammar().validate());
  EXPECT_TRUE(navm_grammar().validate());
  EXPECT_TRUE(sysvm_grammar().validate());
  EXPECT_TRUE(hw_grammar().validate());
}

TEST(Layer1b, ReflectedDbEngineConforms) {
  const auto grammar = db_grammar();

  // A live engine mid-flight: committed chains (including a delete
  // marker and a CAS bump), an open transaction with buffered writes,
  // and non-zero commit/abort/conflict counters.
  db::Engine engine;
  engine.put("bridge", "model", "payload-1");
  engine.put("bridge", "model", "payload-2", 1);
  engine.put("mast", "results", "payload-3");
  engine.erase("mast");
  const auto aborted = engine.begin();
  engine.put(aborted, "x", "model", "gone");
  engine.abort(aborted);
  EXPECT_THROW(engine.put("bridge", "model", "stale", 1),
               db::ConflictError);
  const auto open = engine.begin();
  engine.put(open, "bridge", "model", "buffered", 2);
  engine.put(open, "new-entry", "model", "buffered-too");

  hgraph::HGraph g;
  const auto root = reflect_db_engine(g, engine);
  const auto check = grammar.conforms(g, root, "dbengine");
  EXPECT_TRUE(check) << check.error;
}

TEST(Layer1b, CorruptedDbStateIsRejected) {
  const auto grammar = db_grammar();
  db::Engine engine;
  engine.put("bridge", "model", "payload");
  hgraph::HGraph g;
  const auto root = reflect_db_engine(g, engine);
  // Corrupt: a version loses its revision number.
  const auto version = g.follow_path(root, {"chain[0]", "version[0]"});
  ASSERT_TRUE(version.valid());
  g.remove_arc(version, "revision");
  EXPECT_FALSE(grammar.conforms(g, root, "dbengine"));
}

TEST(Layer1, ReflectedModelsConform) {
  const auto grammar = appvm_grammar();
  for (const auto& model :
       {fem::make_cantilever_plate({.nx = 4, .ny = 2}, 10.0),
        fem::make_cantilever_beam({.segments = 4}, 5.0),
        fem::make_truss_bridge({.bays = 3}, 2.0)}) {
    hgraph::HGraph g;
    const auto root = reflect_model(g, model);
    const auto check = grammar.conforms(g, root, "structure");
    EXPECT_TRUE(check) << model.name << ": " << check.error;
  }
}

TEST(Layer1, CorruptedStateIsRejected) {
  const auto grammar = appvm_grammar();
  const auto model = fem::make_cantilever_beam({.segments = 2}, 1.0);
  hgraph::HGraph g;
  const auto root = reflect_model(g, model);
  // Corrupt: a grid point loses its y coordinate.
  const auto point = g.follow(root, "node[0]");
  ASSERT_TRUE(point.valid());
  g.remove_arc(point, "y");
  EXPECT_FALSE(grammar.conforms(g, root, "structure"));
}

TEST(Layer1, ResultsAndWorkspaceAndDatabaseConform) {
  const auto grammar = appvm_grammar();
  const auto model = fem::make_cantilever_plate({.nx = 4, .ny = 2}, 10.0);
  const auto results = fem::analyze(model, "tip-shear");

  hgraph::HGraph g;
  EXPECT_TRUE(grammar.conforms(g, reflect_results(g, results), "results"));

  appvm::Database db;
  appvm::Session session(db, "spec-tester");
  session.execute("mesh plate nx=4 ny=2 load=3");
  session.execute("solve tip-shear");
  session.execute("store panel");
  hgraph::HGraph g2;
  const auto ws = reflect_workspace(g2, session);
  EXPECT_TRUE(grammar.conforms(g2, ws, "workspace"));
  const auto dbn = reflect_database(g2, session.database());
  EXPECT_TRUE(grammar.conforms(g2, dbn, "database"));
}

TEST(Layer1, TenantScopedWorkspaceAndQueryResultConform) {
  const auto grammar = appvm_grammar();

  appvm::Database db;
  appvm::Session session(db, "spec-tester", "acme");
  session.execute("mesh truss bays=2 load=50");
  session.execute("store bridge");
  session.execute("store bridge-deck");

  hgraph::HGraph g;
  const auto ws = reflect_workspace(g, session);
  const auto ws_check = grammar.conforms(g, ws, "workspace");
  EXPECT_TRUE(ws_check) << ws_check.error;
  EXPECT_TRUE(g.follow_path(ws, {"tenant"}).valid());

  db::QueryFilter filter;
  filter.name_prefix = "bridge";
  filter.limit = 1;
  const auto result = db.query(filter);
  const auto qr = reflect_query_result(g, filter, result);
  const auto qr_check = grammar.conforms(g, qr, "queryresult");
  EXPECT_TRUE(qr_check) << qr_check.error;
}

TEST(Layer1b, GroupCommitAndIndexStateConform) {
  const auto grammar = db_grammar();
  db::EngineOptions options;
  options.group_commit_window = std::chrono::microseconds(500);
  db::Engine engine(options);
  engine.put("bridge", "model", "payload");
  engine.put("mast", "results", "payload");

  hgraph::HGraph g;
  const auto root = reflect_db_engine(g, engine);
  const auto check = grammar.conforms(g, root, "dbengine");
  EXPECT_TRUE(check) << check.error;
  // The optional summaries are present for this engine...
  EXPECT_TRUE(g.follow_path(root, {"index"}).valid());
  EXPECT_TRUE(g.follow_path(root, {"groupcommit"}).valid());
  // ...and absent for a classic engine, which must conform as before.
  db::Engine classic;
  hgraph::HGraph g2;
  const auto classic_root = reflect_db_engine(g2, classic);
  EXPECT_TRUE(grammar.conforms(g2, classic_root, "dbengine"));
  EXPECT_FALSE(g2.follow_path(classic_root, {"groupcommit"}).valid());
}

TEST(Layer2, WindowsAndTaskSystemConform) {
  const auto grammar = navm_grammar();
  hgraph::HGraph g;
  EXPECT_TRUE(
      grammar.conforms(g, reflect_window(g, navm::Window{3, 0, 1, 4, 5}),
                       "window"));

  // Run a real workload, then reflect the whole task system.
  hw::MachineConfig config;
  config.clusters = 2;
  config.pes_per_cluster = 3;
  hw::Machine machine(config);
  sysvm::Os os(machine);
  navm::Runtime runtime(os);
  navm::register_parallel_ops(runtime);
  runtime.define_task("main", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto w = ctx.create_vector({1, 2, 3, 4});
    auto results = co_await navm::forall(
        ctx, navm::kDotTask, 2, [&](std::uint32_t i) {
          const auto parts = w.split_rows(2);
          return navm::make_dot_params({parts[i], parts[i]});
        });
    (void)results;
    co_return sysvm::Payload{};
  });
  const auto id = runtime.launch("main");
  runtime.run();
  ASSERT_TRUE(os.task_finished(id));

  hgraph::HGraph g2;
  const auto root = reflect_task_system(g2, os, runtime);
  const auto check = grammar.conforms(g2, root, "tasksystem");
  EXPECT_TRUE(check) << check.error;
}

TEST(Layer3, AllSevenMessageTypesConform) {
  const auto grammar = sysvm_grammar();
  std::vector<sysvm::Message> messages;
  sysvm::MsgInitiate init;
  init.task_type = "t";
  init.task = 5;
  init.parent = 1;
  messages.emplace_back(std::move(init));
  messages.emplace_back(sysvm::MsgPauseNotify{7, 1});
  messages.emplace_back(sysvm::MsgResumeChild{7, {}});
  messages.emplace_back(sysvm::MsgTerminateNotify{7, 1, {}});
  sysvm::MsgRemoteCall call;
  call.procedure = "p";
  call.caller = 3;
  call.token = 9;
  messages.emplace_back(std::move(call));
  messages.emplace_back(sysvm::MsgRemoteReturn{3, 9, {}});
  messages.emplace_back(sysvm::MsgLoadCode{"t", 4096});

  for (const auto& m : messages) {
    hgraph::HGraph g;
    const auto node = reflect_message(g, m);
    const auto check = grammar.conforms(g, node, "message");
    EXPECT_TRUE(check)
        << sysvm::message_type_name(sysvm::message_type(m)) << ": "
        << check.error;
  }
}

TEST(Layer3And4, KernelAndMachineConformAfterRealRun) {
  hw::MachineConfig config;
  config.clusters = 2;
  config.pes_per_cluster = 2;
  hw::Machine machine(config);
  sysvm::Os os(machine);
  navm::Runtime runtime(os);
  runtime.define_task("noop", [](navm::TaskContext& ctx) -> navm::Coro {
    ctx.charge(100);
    co_return sysvm::Payload{};
  });
  const auto id = runtime.launch("noop");
  runtime.run();
  ASSERT_TRUE(os.task_finished(id));

  const auto sys_grammar = sysvm_grammar();
  for (std::uint32_t c = 0; c < 2; ++c) {
    hgraph::HGraph g;
    const auto kernel = reflect_kernel(g, os, hw::ClusterId{c});
    const auto check = sys_grammar.conforms(g, kernel, "kernel");
    EXPECT_TRUE(check) << check.error;
  }

  hgraph::HGraph g;
  const auto machine_node = reflect_machine(g, machine);
  const auto check = hw_grammar().conforms(g, machine_node, "machine");
  EXPECT_TRUE(check) << check.error;
}

TEST(Layer4, MachineWithFailedPesStillConforms) {
  hw::MachineConfig config;
  config.clusters = 2;
  config.pes_per_cluster = 3;
  hw::Machine machine(config);
  machine.fail_pe(hw::PeId{hw::ClusterId{0}, 0});
  hgraph::HGraph g;
  const auto node = reflect_machine(g, machine);
  EXPECT_TRUE(hw_grammar().conforms(g, node, "machine"));
  // The reflected kernel of cluster 0 is the promoted PE 1.
  const auto cluster0 = g.follow(node, "cluster[0]");
  EXPECT_EQ(g.int_value(g.follow(cluster0, "kernel_pe")), 1);
  const auto pe0 = g.follow(cluster0, "pe[0]");
  EXPECT_EQ(g.string_value(g.follow(pe0, "state")), "failed");
}

TEST(Transforms, BuildConformingModelAndCatchViolations) {
  auto registry = make_appvm_transforms();
  hgraph::HGraph g;
  const auto name_arg = g.add_node();
  g.add_arc(name_arg, "name", g.add_string("t"));
  const auto model = registry.apply("define-structure-model", g, name_arg);

  const auto grid_arg = g.add_node();
  g.add_arc(grid_arg, "model", model);
  g.add_arc(grid_arg, "nx", g.add_int(2));
  g.add_arc(grid_arg, "ny", g.add_int(2));
  g.add_arc(grid_arg, "width", g.add_real(1.0));
  g.add_arc(grid_arg, "height", g.add_real(1.0));
  registry.apply("generate-grid", g, grid_arg);

  const auto count = registry.apply("count-nodes", g, model);
  EXPECT_EQ(g.int_value(count), 9);

  // Malformed argument records are rejected before the transform runs.
  const auto bad_arg = g.add_node();
  g.add_arc(bad_arg, "model", model);
  EXPECT_THROW(registry.apply("add-node", g, bad_arg),
               hgraph::TransformError);
}

TEST(Transforms, AddLoadGroupsByName) {
  auto registry = make_appvm_transforms();
  hgraph::HGraph g;
  const auto name_arg = g.add_node();
  g.add_arc(name_arg, "name", g.add_string("t"));
  const auto model = registry.apply("define-structure-model", g, name_arg);

  auto add_load = [&](const char* set, std::int64_t node) {
    const auto arg = g.add_node();
    g.add_arc(arg, "model", model);
    g.add_arc(arg, "set", g.add_string(set));
    g.add_arc(arg, "node", g.add_int(node));
    g.add_arc(arg, "dof", g.add_int(1));
    g.add_arc(arg, "value", g.add_real(-1.0));
    registry.apply("add-load", g, arg);
  };
  add_load("wind", 0);
  add_load("wind", 1);
  add_load("dead", 2);
  EXPECT_EQ(g.arc_count(model, "loadset[0]") +
                g.arc_count(model, "loadset[1]"),
            2u);
  const auto wind = g.follow(model, "loadset[0]");
  EXPECT_EQ(g.follow_all(wind, "pointload[0]").size() +
                g.follow_all(wind, "pointload[1]").size(),
            2u);
}

}  // namespace
}  // namespace fem2::spec
