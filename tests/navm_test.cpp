// Numerical analyst's VM tests: window algebra, coroutine task features,
// collectors, distributed operations, and behaviour under PE failures.
#include <gtest/gtest.h>

#include "la/iterative.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "navm/value.hpp"
#include "support/rng.hpp"

namespace fem2::navm {
namespace {

// --- window algebra (pure) ------------------------------------------------

TEST(Window, RowColBlockViews) {
  const Window w{7, 2, 3, 10, 20};
  const Window r = w.row(4);
  EXPECT_EQ(r.row0, 6u);
  EXPECT_EQ(r.rows, 1u);
  EXPECT_EQ(r.cols, 20u);
  const Window c = w.col(5);
  EXPECT_EQ(c.col0, 8u);
  EXPECT_EQ(c.cols, 1u);
  EXPECT_EQ(c.rows, 10u);
  const Window b = w.block(1, 2, 3, 4);
  EXPECT_EQ(b.row0, 3u);
  EXPECT_EQ(b.col0, 5u);
  EXPECT_EQ(b.elements(), 12u);
  EXPECT_THROW(w.block(8, 0, 5, 1), support::CheckError);
  EXPECT_THROW(w.row(10), support::CheckError);
}

TEST(Window, SplitRowsCoversExactly) {
  const Window w{1, 0, 0, 10, 4};
  for (const std::size_t k : {1u, 2u, 3u, 7u, 10u}) {
    const auto parts = w.split_rows(k);
    std::size_t covered = 0;
    std::size_t expect_row = 0;
    for (const auto& p : parts) {
      EXPECT_EQ(p.row0, expect_row);
      EXPECT_EQ(p.cols, 4u);
      expect_row = p.row0 + p.rows;
      covered += p.rows;
    }
    EXPECT_EQ(covered, 10u);
  }
  // More parts than rows: empty bands dropped.
  EXPECT_EQ(w.split_rows(20).size(), 10u);
}

TEST(Window, RangeOnVectors) {
  const Window v{3, 0, 0, 100, 1};
  const Window r = v.range(10, 25);
  EXPECT_EQ(r.row0, 10u);
  EXPECT_EQ(r.rows, 25u);
  EXPECT_THROW(v.range(90, 20), support::CheckError);
  const Window matrix{3, 0, 0, 10, 10};
  EXPECT_THROW(matrix.range(0, 5), support::CheckError);
}

class BlockBegin : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t>> {};

TEST_P(BlockBegin, PartitionIsMonotoneAndExact) {
  const auto [n, k] = GetParam();
  EXPECT_EQ(block_begin(n, k, 0), 0u);
  EXPECT_EQ(block_begin(n, k, k), n);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_LE(block_begin(n, k, i), block_begin(n, k, i + 1));
    // Blocks differ in size by at most one.
    const auto size = block_begin(n, k, i + 1) - block_begin(n, k, i);
    EXPECT_LE(size, n / k + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BlockBegin,
    ::testing::Combine(::testing::Values(1u, 7u, 64u, 1000u),
                       ::testing::Values(1u, 3u, 8u, 16u)));

// --- runtime fixtures --------------------------------------------------------

struct Stack {
  static hw::MachineConfig make_config(std::size_t clusters = 2,
                                       std::size_t ppc = 3) {
    hw::MachineConfig c;
    c.clusters = clusters;
    c.pes_per_cluster = ppc;
    c.memory_per_cluster = 8u << 20;
    return c;
  }

  hw::Machine machine;
  sysvm::Os os;
  Runtime runtime;

  explicit Stack(hw::MachineConfig config = make_config())
      : machine(config), os(machine), runtime(os) {}
};

TEST(Runtime, TaskParamsAndReplicationIndices) {
  Stack s;
  s.runtime.define_task("child", [](TaskContext& ctx) -> Coro {
    EXPECT_EQ(ctx.replication_count(), 3u);
    co_return payload_int(as_int(ctx.params()) +
                          ctx.replication_index());
  });
  s.runtime.define_task("parent", [](TaskContext& ctx) -> Coro {
    auto results = co_await forall(ctx, "child", 3, [](std::uint32_t) {
      return payload_int(100);
    });
    std::int64_t sum = 0;
    for (const auto& r : results) sum += as_int(r);
    co_return payload_int(sum);
  });
  const auto id = s.runtime.launch("parent");
  s.runtime.run();
  EXPECT_EQ(as_int(s.runtime.result(id)), 303);
}

TEST(Runtime, PardoRunsHeterogeneousBranches) {
  Stack s;
  s.runtime.define_task("square", [](TaskContext& ctx) -> Coro {
    const auto v = as_int(ctx.params());
    co_return payload_int(v * v);
  });
  s.runtime.define_task("negate", [](TaskContext& ctx) -> Coro {
    co_return payload_int(-as_int(ctx.params()));
  });
  s.runtime.define_task("main", [](TaskContext& ctx) -> Coro {
    std::vector<PardoSpec> specs;
    specs.push_back({"square", payload_int(6)});
    specs.push_back({"negate", payload_int(10)});
    auto results = co_await pardo(ctx, std::move(specs));
    std::int64_t sum = 0;
    for (const auto& r : results) sum += as_int(r);
    co_return payload_int(sum);  // 36 - 10
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  EXPECT_EQ(as_int(s.runtime.result(id)), 26);
}

TEST(Runtime, EmptyPardoCompletesImmediately) {
  Stack s;
  s.runtime.define_task("main", [](TaskContext& ctx) -> Coro {
    auto results = co_await pardo(ctx, {});
    co_return payload_int(static_cast<std::int64_t>(results.size()));
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  EXPECT_EQ(as_int(s.runtime.result(id)), 0);
}

TEST(Runtime, PayloadTypeMismatchThrowsCleanly) {
  Stack s;
  s.runtime.define_task("main", [](TaskContext& ctx) -> Coro {
    // Params hold an int; reading them as a window must throw a typed
    // error, not crash.
    EXPECT_THROW((void)ctx.params().as<Window>(), support::Error);
    co_return sysvm::Payload{};
  });
  const auto id = s.runtime.launch("main", payload_int(7));
  s.runtime.run();
  EXPECT_TRUE(s.os.task_finished(id));
}

TEST(Runtime, YieldInterleavesReadyTasks) {
  Stack s;
  s.runtime.define_task("yielder", [](TaskContext& ctx) -> Coro {
    for (int i = 0; i < 3; ++i) {
      ctx.charge(10);
      co_await ctx.yield();
    }
    co_return payload_int(1);
  });
  s.runtime.define_task("main", [](TaskContext& ctx) -> Coro {
    auto results = co_await forall(ctx, "yielder", 4, {});
    co_return payload_int(static_cast<std::int64_t>(results.size()));
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  EXPECT_EQ(as_int(s.runtime.result(id)), 4);
}

TEST(Runtime, WindowWriteRemoteAndReadBack) {
  Stack s{Stack::make_config(3, 2)};
  s.runtime.define_task("writer", [](TaskContext& ctx) -> Coro {
    const auto& win = ctx.params().as<Window>();
    std::vector<double> data{9.0, 8.0, 7.0};
    co_await ctx.write(win, std::move(data));
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("owner", [](TaskContext& ctx) -> Coro {
    const auto win = ctx.create_vector({1, 2, 3, 4, 5});
    (void)co_await forall(ctx, "writer", 1, [&](std::uint32_t) {
      return sysvm::Payload::of(win.range(1, 3), Window::kDescriptorBytes);
    });
    const auto data = co_await ctx.read(win);
    co_return payload_reals(data);
  });
  const auto id = s.runtime.launch("owner");
  s.runtime.run();
  const auto& data = as_reals(s.runtime.result(id));
  EXPECT_EQ(data, (std::vector<double>{1, 9, 8, 7, 5}));
}

TEST(Runtime, CallAtRoutesToWindowLocation) {
  // "Remote procedure call - location determined by location of data
  // visible in a window."
  Stack s{Stack::make_config(4, 2)};
  std::vector<std::uint32_t> executed_on;
  s.os.register_procedure(sysvm::Procedure{
      "where", 64,
      [&](sysvm::ProcedureContext& ctx, const sysvm::Payload&) {
        executed_on.push_back(ctx.cluster.index);
        return payload_int(ctx.cluster.index);
      }});
  s.runtime.define_task("owner", [](TaskContext& ctx) -> Coro {
    const auto w = ctx.create_vector({1.0});
    const auto reply = co_await ctx.call_at(w, "where", sysvm::Payload{});
    // The call ran where the window's data lives: our own cluster.
    EXPECT_EQ(as_int(reply),
              static_cast<std::int64_t>(ctx.cluster().index));
    co_return sysvm::Payload{};
  });
  const auto id = s.runtime.launch("owner");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  ASSERT_EQ(executed_on.size(), 1u);
}

TEST(Runtime, ArrayDiesWithOwnerTask) {
  Stack s;
  Window leaked;
  s.runtime.define_task("owner", [&](TaskContext& ctx) -> Coro {
    leaked = ctx.create_vector({1, 2, 3});
    co_return sysvm::Payload{};
  });
  const auto id = s.runtime.launch("owner");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  // "Data lifetime - lifetime of owner task": the window is now dangling.
  EXPECT_THROW(s.runtime.gather(leaked), support::CheckError);
}

TEST(Runtime, CollectorGathersDeposits) {
  Stack s{Stack::make_config(3, 3)};
  struct DepositorParams {
    hw::ClusterId home;
    std::uint64_t collector;
  };
  s.runtime.define_task("depositor", [](TaskContext& ctx) -> Coro {
    const auto& p = ctx.params().as<DepositorParams>();
    (void)co_await ctx.deposit(
        p.home, p.collector,
        payload_int(static_cast<std::int64_t>(ctx.replication_index())));
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("main", [](TaskContext& ctx) -> Coro {
    const auto collector = ctx.make_collector(5);
    ctx.initiate("depositor", 5, [&](std::uint32_t) {
      return sysvm::Payload::of(DepositorParams{ctx.cluster(), collector},
                                16);
    });
    auto deposits = co_await ctx.collect(collector);
    std::int64_t sum = 0;
    for (const auto& d : deposits) sum += as_int(d);
    (void)co_await ctx.join(5);
    co_return payload_int(sum);
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  EXPECT_EQ(as_int(s.runtime.result(id)), 0 + 1 + 2 + 3 + 4);
}

TEST(Runtime, CollectorReusableAcrossPhases) {
  Stack s;
  struct Params {
    hw::ClusterId home;
    std::uint64_t collector;
  };
  s.runtime.define_task("worker", [](TaskContext& ctx) -> Coro {
    const auto& p = ctx.params().as<Params>();
    for (int round = 0; round < 3; ++round) {
      (void)co_await ctx.deposit(p.home, p.collector,
                                 payload_int(round));
      (void)co_await ctx.pause();
    }
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("driver", [](TaskContext& ctx) -> Coro {
    const auto collector = ctx.make_collector(2);
    const auto children = ctx.initiate("worker", 2, [&](std::uint32_t) {
      return sysvm::Payload::of(Params{ctx.cluster(), collector}, 16);
    });
    std::int64_t total = 0;
    for (int round = 0; round < 3; ++round) {
      auto deposits = co_await ctx.collect(collector);
      EXPECT_EQ(deposits.size(), 2u);
      for (const auto& d : deposits) total += as_int(d);
      ctx.broadcast(children, sysvm::Payload{});
    }
    (void)co_await ctx.join(2);
    co_return payload_int(total);  // 2*(0+1+2)
  });
  const auto id = s.runtime.launch("driver");
  s.runtime.run();
  EXPECT_EQ(as_int(s.runtime.result(id)), 6);
}

// --- distributed operations vs sequential reference -------------------------

TEST(ParOps, DistributedDotMatchesSequential) {
  Stack s{Stack::make_config(4, 4)};
  register_parallel_ops(s.runtime);
  const std::size_t n = 1000;
  std::vector<double> a(n), b(n);
  support::Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
  }
  const double expected = la::dot(a, b);

  s.runtime.define_task("main", [&](TaskContext& ctx) -> Coro {
    const auto wa = ctx.create_vector(a);
    const auto wb = ctx.create_vector(b);
    const auto pa = wa.split_rows(4);
    const auto pb = wb.split_rows(4);
    auto results = co_await forall(ctx, kDotTask, 4, [&](std::uint32_t i) {
      return make_dot_params({pa[i], pb[i]});
    });
    double total = 0;
    for (const auto& r : results) total += as_real(r);
    co_return payload_real(total);
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  EXPECT_NEAR(as_real(s.runtime.result(id)), expected, 1e-10);
}

TEST(ParOps, DistributedAxpyMatchesSequential) {
  Stack s{Stack::make_config(4, 4)};
  register_parallel_ops(s.runtime);
  const std::size_t n = 500;
  std::vector<double> x(n), y(n), expected;
  support::Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  expected = y;
  la::axpy(1.5, x, expected);

  s.runtime.define_task("main", [&](TaskContext& ctx) -> Coro {
    const auto wx = ctx.create_vector(x);
    const auto wy = ctx.create_vector(y);
    const auto px = wx.split_rows(3);
    const auto py = wy.split_rows(3);
    (void)co_await forall(ctx, kAxpyTask, 3, [&](std::uint32_t i) {
      return make_axpy_params({1.5, px[i], py[i]});
    });
    co_return payload_reals(co_await ctx.read(wy));
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  const auto& result = as_reals(s.runtime.result(id));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(result[i], expected[i], 1e-12);
}

la::CsrMatrix laplacian_2d(std::size_t nx, std::size_t ny) {
  const std::size_t n = nx * ny;
  la::TripletBuilder b(n, n);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t p = j * nx + i;
      b.add(p, p, 4.0);
      if (i > 0) b.add(p, p - 1, -1.0);
      if (i + 1 < nx) b.add(p, p + 1, -1.0);
      if (j > 0) b.add(p, p - nx, -1.0);
      if (j + 1 < ny) b.add(p, p + nx, -1.0);
    }
  }
  return b.build();
}

class DistributedCg
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {
};

TEST_P(DistributedCg, MatchesSequentialAcrossWorkersAndClusters) {
  const auto [workers, clusters] = GetParam();
  Stack s{Stack::make_config(clusters, 4)};
  register_parallel_ops(s.runtime);

  CgProblem problem;
  problem.a = laplacian_2d(12, 9);
  problem.b.resize(108);
  support::Rng rng(workers * 100 + clusters);
  for (auto& v : problem.b) v = rng.uniform(-1, 1);
  problem.workers = workers;
  problem.tolerance = 1e-11;

  const auto reference = la::conjugate_gradient(problem.a, problem.b,
                                                {.tolerance = 1e-11});
  ASSERT_TRUE(reference.report.converged);

  const auto task = s.runtime.launch(kCgDriverTask,
                                     make_cg_problem(problem));
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(task));
  const auto& result = as_cg_result(s.runtime.result(task));
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < problem.b.size(); ++i)
    EXPECT_NEAR(result.x[i], reference.x[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByClusters, DistributedCg,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 7u, 8u),
                       ::testing::Values(1u, 2u, 4u)));

TEST(ParOps, CgSurvivesMidRunPeFailure) {
  Stack s{Stack::make_config(4, 4)};
  register_parallel_ops(s.runtime);
  CgProblem problem;
  problem.a = laplacian_2d(10, 10);
  problem.b.assign(100, 1.0);
  problem.workers = 8;
  problem.tolerance = 1e-10;
  const auto reference = la::conjugate_gradient(problem.a, problem.b);

  const auto task = s.runtime.launch(kCgDriverTask, make_cg_problem(problem));
  s.machine.engine().schedule(300'000, [&] {
    s.machine.fail_pe(hw::PeId{hw::ClusterId{2}, 1});
    s.machine.fail_pe(hw::PeId{hw::ClusterId{3}, 0});  // a kernel PE
  });
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(task));
  const auto& result = as_cg_result(s.runtime.result(task));
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(result.x[i], reference.x[i], 1e-6);
}

TEST(Window, SplitRowsOfSplitColsTilesExactly) {
  // Property: composing split_rows and split_cols tiles the window with no
  // gaps or overlaps.
  const Window w{5, 3, 2, 24, 18};
  std::vector<std::vector<bool>> covered(
      w.rows, std::vector<bool>(w.cols, false));
  for (const auto& band : w.split_rows(5)) {
    for (const auto& block : band.split_cols(4)) {
      for (std::size_t r = 0; r < block.rows; ++r) {
        for (std::size_t c = 0; c < block.cols; ++c) {
          const std::size_t gr = block.row0 - w.row0 + r;
          const std::size_t gc = block.col0 - w.col0 + c;
          ASSERT_FALSE(covered[gr][gc]) << "overlap at " << gr << "," << gc;
          covered[gr][gc] = true;
        }
      }
    }
  }
  for (const auto& row : covered)
    for (const bool cell : row) EXPECT_TRUE(cell);
}

TEST(ParOps, CgDeterministicUnderIdenticalFaultSchedule) {
  // The simulator must be bit-deterministic even with mid-run failures.
  auto run_once = [] {
    Stack s{Stack::make_config(4, 4)};
    register_parallel_ops(s.runtime);
    CgProblem problem;
    problem.a = laplacian_2d(8, 8);
    problem.b.assign(64, 1.0);
    problem.workers = 6;
    const auto task = s.runtime.launch(kCgDriverTask,
                                       make_cg_problem(std::move(problem)));
    s.machine.engine().schedule(150'000, [&s] {
      s.machine.fail_pe(hw::PeId{hw::ClusterId{1}, 2});
    });
    s.runtime.run();
    EXPECT_TRUE(s.os.task_finished(task));
    return std::tuple{s.machine.now(), s.os.metrics().total_messages(),
                      s.os.metrics().steps_redone,
                      as_cg_result(s.runtime.result(task)).x};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
}

TEST(ParOps, CgHandlesZeroRhs) {
  Stack s;
  register_parallel_ops(s.runtime);
  CgProblem problem;
  problem.a = laplacian_2d(4, 4);
  problem.b.assign(16, 0.0);
  problem.workers = 3;
  const auto task = s.runtime.launch(kCgDriverTask, make_cg_problem(problem));
  s.runtime.run();
  const auto& result = as_cg_result(s.runtime.result(task));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (const double v : result.x) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace fem2::navm
