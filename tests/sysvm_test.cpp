// OS-layer tests using hand-scripted (non-coroutine) task programs, so the
// system programmer's VM is exercised in isolation from the layer above.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "sysvm/message.hpp"
#include "sysvm/os.hpp"

namespace fem2::sysvm {
namespace {

/// Scripted task: each entry runs one step and returns its StepResult.
class ScriptedProgram : public TaskProgram {
 public:
  using Step = std::function<StepResult(TaskApi&, Payload wake)>;

  ScriptedProgram(TaskApi& api, std::vector<Step> steps, Payload result = {})
      : api_(api), steps_(std::move(steps)), result_(std::move(result)) {}

  StepResult resume(Payload wake) override {
    FEM2_CHECK(index_ < steps_.size());
    return steps_[index_++](api_, std::move(wake));
  }

  Payload take_result() override { return std::move(result_); }

 private:
  TaskApi& api_;
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  Payload result_;
};

CodeBlock scripted(std::string name,
                   std::function<std::vector<ScriptedProgram::Step>(
                       TaskApi&, const Payload&)> make_steps,
                   std::size_t ar_bytes = 128) {
  CodeBlock block;
  block.name = std::move(name);
  block.activation_record_bytes = ar_bytes;
  block.factory = [make_steps = std::move(make_steps)](TaskApi& api,
                                                       Payload params) {
    return std::make_unique<ScriptedProgram>(api,
                                             make_steps(api, params));
  };
  return block;
}

StepResult finish(hw::Cycles cycles = 10) {
  return {StepResult::Outcome::Finished, cycles};
}

hw::MachineConfig config(std::size_t clusters = 2, std::size_t ppc = 3) {
  hw::MachineConfig c;
  c.clusters = clusters;
  c.pes_per_cluster = ppc;
  c.memory_per_cluster = 1 << 20;
  return c;
}

TEST(Message, WireSizesFollowPayloads) {
  MsgInitiate init;
  init.task_type = "worker";
  init.params = Payload::of(1, 100);
  EXPECT_EQ(message_bytes(Message{init}), 32u + 6u + 100u);

  EXPECT_EQ(message_bytes(Message{MsgPauseNotify{}}), 32u);

  MsgRemoteCall call;
  call.procedure = "p";
  call.args = Payload::of(2, 50);
  EXPECT_EQ(message_bytes(Message{call}), 32u + 1u + 50u);

  MsgLoadCode lc;
  lc.task_type = "ab";
  lc.code_bytes = 4096;
  EXPECT_EQ(message_bytes(Message{lc}), 32u + 2u + 4096u);
}

TEST(Message, TypeNamesCoverAllSeven) {
  for (std::size_t i = 0; i < kMessageTypeCount; ++i)
    EXPECT_FALSE(message_type_name(static_cast<MessageType>(i)).empty());
  EXPECT_EQ(message_type(Message{MsgRemoteReturn{}}),
            MessageType::RemoteReturn);
}

TEST(Os, LaunchRunsToCompletion) {
  hw::Machine machine(config());
  Os os(machine);
  os.register_task_type(scripted("simple", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          api.charge(123);
          return finish();
        }};
  }));
  const TaskId id = os.launch("simple", Payload{});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
  EXPECT_EQ(os.metrics().tasks_initiated, 1u);
  EXPECT_EQ(os.metrics().tasks_finished, 1u);
  EXPECT_GT(os.now(), 0u);
}

TEST(Os, ActivationRecordFreedOnTermination) {
  hw::Machine machine(config(1, 2));
  Os os(machine);
  os.register_task_type(scripted(
      "allocator",
      [](TaskApi&, const Payload&) {
        return std::vector<ScriptedProgram::Step>{[](TaskApi& api, Payload) {
          api.heap_allocate(4096);  // task-owned block
          return finish();
        }};
      },
      256));
  const TaskId id = os.launch("allocator", Payload{});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
  // Everything released: AR + owned block.
  EXPECT_EQ(os.heap(hw::ClusterId{0}).in_use(), 0u);
  EXPECT_GT(os.heap(hw::ClusterId{0}).stats().high_water, 4096u);
  EXPECT_EQ(machine.memory_in_use(hw::ClusterId{0}), 0u);
}

TEST(Os, InitiateReplicationsAndJoin) {
  hw::Machine machine(config(2, 4));
  Os os(machine);
  os.register_task_type(scripted("child", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi&, Payload) { return finish(); }};
  }));
  os.register_task_type(scripted("parent", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          api.initiate("child", 5, [](std::uint32_t i) {
            return Payload::of(i, 4);
          });
          api.block_on_child_terminations(5);
          return StepResult{StepResult::Outcome::Blocked, 10};
        },
        [](TaskApi& api, Payload) {
          // All five results are waiting in the mailbox.
          EXPECT_EQ(api.take_child_results().size(), 5u);
          return finish();
        }};
  }));
  const TaskId id = os.launch("parent", Payload{});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
  EXPECT_EQ(os.metrics().tasks_finished, 6u);
  EXPECT_EQ(os.metrics().messages_sent[static_cast<std::size_t>(
                MessageType::TerminateNotify)],
            5u);
}

TEST(Os, PlacementPolicies) {
  for (const auto placement :
       {Placement::RoundRobin, Placement::Local, Placement::LeastLoaded}) {
    hw::Machine machine(config(4, 2));
    OsOptions options;
    options.placement = placement;
    Os os(machine, options);
    os.register_task_type(scripted("child", [](TaskApi&, const Payload&) {
      return std::vector<ScriptedProgram::Step>{
          [](TaskApi&, Payload) { return finish(1000); }};
    }));
    os.register_task_type(scripted("parent", [](TaskApi&, const Payload&) {
      return std::vector<ScriptedProgram::Step>{
          [](TaskApi& api, Payload) {
            api.initiate("child", 8, {});
            api.block_on_child_terminations(8);
            return StepResult{StepResult::Outcome::Blocked, 1};
          },
          [](TaskApi&, Payload) { return finish(); }};
    }));
    const TaskId id = os.launch("parent", Payload{});
    os.run();
    ASSERT_TRUE(os.task_finished(id));

    std::set<std::uint32_t> used;
    for (const auto task : os.task_ids())
      used.insert(os.task_info(task).cluster.index);
    if (placement == Placement::Local) {
      EXPECT_EQ(used.size(), 1u) << "local placement must not spread";
    } else {
      EXPECT_GT(used.size(), 1u) << "balanced placement must spread";
    }
  }
}

TEST(Os, CodeLoadingSentOncePerClusterAndType) {
  hw::Machine machine(config(2, 3));
  OsOptions options;
  options.placement = Placement::RoundRobin;
  Os os(machine, options);
  os.register_task_type(scripted("worker", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi&, Payload) { return finish(); }};
  }));
  os.register_task_type(scripted("parent", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          api.initiate("worker", 6, {});  // 3 to each cluster
          api.block_on_child_terminations(6);
          return StepResult{StepResult::Outcome::Blocked, 1};
        },
        [](TaskApi&, Payload) { return finish(); }};
  }));
  os.launch("parent", Payload{});
  os.run();
  // load-code: one per (cluster, type) actually used: parent's type on its
  // cluster + worker's type on both clusters = 3.
  EXPECT_EQ(os.metrics().messages_sent[static_cast<std::size_t>(
                MessageType::LoadCode)],
            3u);
}

TEST(Os, RemoteCallExecutesOnTargetAndReplies) {
  hw::Machine machine(config(2, 3));
  Os os(machine);
  std::uint32_t executed_on = 99;
  os.register_procedure(Procedure{
      "probe", 64,
      [&](ProcedureContext& ctx, const Payload& args) {
        executed_on = ctx.cluster.index;
        ctx.charge(50);
        return Payload::of(args.as<int>() * 2, 8);
      }});
  os.register_task_type(scripted("caller", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          const auto token =
              api.remote_call(hw::ClusterId{1}, "probe", Payload::of(21, 8));
          api.block_on_reply(token);
          return StepResult{StepResult::Outcome::Blocked, 5};
        },
        [](TaskApi&, Payload wake) {
          EXPECT_EQ(wake.as<int>(), 42);
          return finish();
        }};
  }));
  const TaskId id = os.launch("caller", Payload{}, hw::ClusterId{0});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
  EXPECT_EQ(executed_on, 1u);
  EXPECT_EQ(os.metrics().procedures_executed, 1u);
}

TEST(Os, EarlyReplyIsBuffered) {
  hw::Machine machine(config(1, 3));
  Os os(machine);
  os.register_procedure(Procedure{
      "fast", 64, [](ProcedureContext& ctx, const Payload&) {
        ctx.charge(1);
        return Payload::of(7, 8);
      }});
  os.register_task_type(scripted("caller", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          api.remote_call(hw::ClusterId{0}, "fast", Payload{});
          // Long step: the reply lands while we are still "running".
          return StepResult{StepResult::Outcome::Yielded, 1'000'000};
        },
        [](TaskApi& api, Payload) {
          // Now block on the token; the buffered reply must wake us
          // immediately.
          api.block_on_reply(1);  // first token allocated is 1
          return StepResult{StepResult::Outcome::Blocked, 5};
        },
        [](TaskApi&, Payload wake) {
          EXPECT_EQ(wake.as<int>(), 7);
          return finish();
        }};
  }));
  const TaskId id = os.launch("caller", Payload{});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
}

TEST(Os, ResumeBeforePauseIsBuffered) {
  hw::Machine machine(config(1, 3));
  Os os(machine);
  os.register_task_type(scripted("child", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          // Burn time so the parent's resume arrives before our pause.
          api.charge(500'000);
          return StepResult{StepResult::Outcome::Yielded, 0};
        },
        [](TaskApi& api, Payload) {
          api.block_for_pause();
          return StepResult{StepResult::Outcome::Blocked, 1};
        },
        [](TaskApi&, Payload wake) {
          EXPECT_EQ(wake.as<int>(), 5);
          return finish();
        }};
  }));
  os.register_task_type(scripted("parent", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          const auto children = api.initiate("child", 1, {});
          api.resume_child(children[0], Payload::of(5, 8));
          api.block_on_child_terminations(1);
          return StepResult{StepResult::Outcome::Blocked, 1};
        },
        [](TaskApi&, Payload) { return finish(); }};
  }));
  const TaskId id = os.launch("parent", Payload{});
  os.run();
  EXPECT_TRUE(os.task_finished(id));
}

TEST(Os, StepRedoneAfterPeFailure) {
  hw::Machine machine(config(1, 3));
  Os os(machine);
  os.register_task_type(scripted("worker", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi& api, Payload) {
          api.charge(10'000);
          return finish(0);
        }};
  }));
  const TaskId id = os.launch("worker", Payload{});
  // Kill the (only) worker PE mid-step; PE 2 takes over and the buffered
  // step replays its cost without re-running host code.
  machine.engine().schedule(
      2'000, [&] { machine.fail_pe(hw::PeId{hw::ClusterId{0}, 1}); });
  os.run();
  EXPECT_TRUE(os.task_finished(id));
  EXPECT_EQ(os.metrics().steps_executed, 1u);
  EXPECT_EQ(os.metrics().steps_redone, 1u);
}

TEST(Os, KernelDispatchPerMessage) {
  hw::Machine machine(config(2, 3));
  Os os(machine);
  os.register_task_type(scripted("simple", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi&, Payload) { return finish(); }};
  }));
  os.launch("simple", Payload{});
  os.run();
  // Every delivered message was fielded by a kernel dispatch.
  EXPECT_EQ(os.metrics().kernel_dispatches, os.metrics().total_messages());
}

TEST(Os, TaskInfoAndReadyDepth) {
  hw::Machine machine(config(1, 2));
  Os os(machine);
  os.register_task_type(scripted("simple", [](TaskApi&, const Payload&) {
    return std::vector<ScriptedProgram::Step>{
        [](TaskApi&, Payload) { return finish(); }};
  }));
  const TaskId id = os.launch("simple", Payload{});
  os.run();
  const auto info = os.task_info(id);
  EXPECT_EQ(info.type, "simple");
  EXPECT_EQ(info.state, TaskState::Finished);
  EXPECT_EQ(info.parent, kNoTask);
  EXPECT_EQ(os.ready_depth(hw::ClusterId{0}), 0u);
  EXPECT_EQ(os.live_tasks(), 0u);
}

}  // namespace
}  // namespace fem2::sysvm
