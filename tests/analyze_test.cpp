// fem2_analyze tests: the grammar linter against seeded grammar defects,
// and the dynamic passes (conformance, race, deadlock) against seeded
// runtime defects — plus the zero-false-positive guarantee on a clean
// distributed solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hgraph/grammar_parser.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "navm/value.hpp"

namespace fem2::analyze {
namespace {

bool has_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

const Finding* first_with_rule(const std::vector<Finding>& findings,
                               std::string_view rule) {
  for (const auto& f : findings)
    if (f.rule == rule) return &f;
  return nullptr;
}

std::string dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += f.to_string() + "\n";
  return out;
}

// --- pass 1: grammar lint ---------------------------------------------------

TEST(GrammarLint, BuiltinLayerGrammarsAreClean) {
  const auto findings = Analyzer::lint_layer_grammars();
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(GrammarLint, DetectsSeededDefects) {
  auto grammar = hgraph::parse_grammar(R"(
root    ::= { a: INT, leaf: leaf }
leaf    ::= INT | INT
orphan  ::= { x: REAL }
loop    ::= { next: loop }
mixed   ::= INT | ANY
)");
  // The parser itself now rejects duplicate arc labels (see hgraph_test),
  // so seed the conflicting-arc defect by hand: dup ::= { x: INT, x: REAL }.
  hgraph::Composite dup_comp;
  dup_comp.arcs.push_back({"x", hgraph::Multiplicity::One, "INT",
                           hgraph::SourceLoc{7, 11}});
  dup_comp.arcs.push_back({"x", hgraph::Multiplicity::One, "REAL",
                           hgraph::SourceLoc{7, 19}});
  grammar.add_alternative("dup", std::move(dup_comp), hgraph::SourceLoc{7, 1});
  LintOptions options;
  options.roots = {"root"};
  const auto findings = lint_grammar(grammar, "seeded", options);

  EXPECT_TRUE(has_rule(findings, "unreachable-nonterminal"))
      << dump(findings);
  EXPECT_TRUE(has_rule(findings, "unproductive-nonterminal"))
      << dump(findings);
  EXPECT_TRUE(has_rule(findings, "duplicate-production")) << dump(findings);
  EXPECT_TRUE(has_rule(findings, "atom-conflict")) << dump(findings);
  EXPECT_TRUE(has_rule(findings, "conflicting-arc-pattern"))
      << dump(findings);

  // Diagnostics carry grammar source locations.
  const auto* dup = first_with_rule(findings, "duplicate-production");
  ASSERT_NE(dup, nullptr);
  EXPECT_NE(dup->evidence.find("line 3"), std::string::npos) << dup->evidence;
  const auto* arc = first_with_rule(findings, "conflicting-arc-pattern");
  ASSERT_NE(arc, nullptr);
  EXPECT_NE(arc->evidence.find("line 7"), std::string::npos) << arc->evidence;
}

TEST(GrammarLint, DetectsUndefinedNonterminalInHandBuiltGrammar) {
  // parse_grammar validates eagerly, so build the defective grammar by hand
  // (the lint pass must not depend on the parser's own validation).
  hgraph::Grammar grammar;
  grammar.add_alternative("a", hgraph::NonterminalRef{"missing"});
  const auto findings = lint_grammar(grammar, "handmade");
  const auto* f = first_with_rule(findings, "undefined-nonterminal");
  ASSERT_NE(f, nullptr) << dump(findings);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_NE(f->message.find("missing"), std::string::npos);
}

TEST(GrammarParser, ParseErrorCarriesLineAndColumn) {
  try {
    (void)hgraph::parse_grammar("scalar ::= INT\nbad ::= { x: INT\n");
    FAIL() << "expected GrammarParseError";
  } catch (const hgraph::GrammarParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line"), std::string::npos) << what;
    EXPECT_NE(what.find("col"), std::string::npos) << what;
  }
}

TEST(GrammarParser, UndefinedReferenceNamesItsLocation) {
  try {
    (void)hgraph::parse_grammar("a ::= { x: nowhere }\n");
    FAIL() << "expected GrammarParseError";
  } catch (const hgraph::GrammarParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nowhere"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
}

// --- runtime fixtures -------------------------------------------------------

struct Stack {
  static hw::MachineConfig make_config() {
    hw::MachineConfig c;
    c.clusters = 2;
    c.pes_per_cluster = 3;
    c.memory_per_cluster = 8u << 20;
    return c;
  }

  hw::Machine machine;
  sysvm::Os os;
  navm::Runtime runtime;

  Stack() : machine(make_config()), os(machine), runtime(os) {}
};

// --- pass 3a: race detection ------------------------------------------------

TEST(Analyzer, DetectsSeededWriteWriteRace) {
  Stack s;
  Analyzer analyzer(s.runtime);

  s.runtime.define_task("racer", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto w = ctx.params().as<navm::Window>();
    co_await ctx.write(
        w, std::vector<double>(w.elements(),
                               static_cast<double>(ctx.replication_index())));
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("parent", [](navm::TaskContext& ctx) -> navm::Coro {
    const navm::Window w = ctx.create_vector(std::vector<double>(8, 0.0));
    // Two siblings write the same window with no ordering between them.
    ctx.initiate("racer", 2,
                 [w](std::uint32_t) { return navm::payload_struct(w, 40); });
    co_await ctx.join(2);
    co_return sysvm::Payload{};
  });
  s.runtime.launch("parent");
  s.runtime.run();

  const auto& findings = analyzer.findings();
  const auto* race = first_with_rule(findings, "write-write-race");
  ASSERT_NE(race, nullptr) << dump(findings);
  EXPECT_EQ(race->pass, Pass::Race);
  EXPECT_EQ(race->severity, Severity::Error);
  EXPECT_EQ(race->layer, Layer::Navm);
  // Evidence names the two unordered epochs.
  EXPECT_NE(race->evidence.find("epochs"), std::string::npos)
      << race->evidence;
}

TEST(Analyzer, OrderedSiblingWritesAreNotARace) {
  Stack s;
  Analyzer analyzer(s.runtime);

  s.runtime.define_task("writer", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto w = ctx.params().as<navm::Window>();
    co_await ctx.write(w, std::vector<double>(w.elements(), 1.0));
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("parent", [](navm::TaskContext& ctx) -> navm::Coro {
    const navm::Window w = ctx.create_vector(std::vector<double>(8, 0.0));
    // Same two writes, but sequenced: the second child is initiated only
    // after the first terminated, so the terminate-notify edge orders them.
    ctx.initiate("writer", 1,
                 [w](std::uint32_t) { return navm::payload_struct(w, 40); });
    co_await ctx.join(1);
    ctx.initiate("writer", 1,
                 [w](std::uint32_t) { return navm::payload_struct(w, 40); });
    co_await ctx.join(1);
    co_return sysvm::Payload{};
  });
  s.runtime.launch("parent");
  s.runtime.run();

  EXPECT_TRUE(analyzer.findings().empty()) << dump(analyzer.findings());
  EXPECT_GT(analyzer.stats().accesses_tracked, 0u);
}

// --- pass 3b: deadlock detection --------------------------------------------

TEST(Analyzer, DetectsSeededWaitCycle) {
  Stack s;
  Analyzer analyzer(s.runtime);

  s.runtime.define_task("child", [](navm::TaskContext& ctx) -> navm::Coro {
    // Pauses and waits for a resume that never comes...
    co_await ctx.pause();
    co_return sysvm::Payload{};
  });
  s.runtime.define_task("parent", [](navm::TaskContext& ctx) -> navm::Coro {
    ctx.initiate("child", 1);
    // ...while the parent waits for the child to terminate.
    co_await ctx.join(1);
    co_return sysvm::Payload{};
  });
  s.runtime.launch("parent");
  s.runtime.run();  // runs to quiescence with both tasks stuck

  const auto& findings = analyzer.findings();
  const auto* cycle = first_with_rule(findings, "wait-cycle");
  ASSERT_NE(cycle, nullptr) << dump(findings);
  EXPECT_EQ(cycle->pass, Pass::Deadlock);
  EXPECT_EQ(cycle->severity, Severity::Error);
  // The cycle evidence names both waits.
  EXPECT_NE(cycle->evidence.find("paused"), std::string::npos)
      << cycle->evidence;
  EXPECT_NE(cycle->evidence.find("termination"), std::string::npos)
      << cycle->evidence;
}

// --- pass 2: conformance ----------------------------------------------------

TEST(Analyzer, DetectsConformanceBreakAndAttributesIt) {
  Stack s;
  AnalyzerOptions options;
  options.snapshot_stride = 1;
  Analyzer analyzer(s.runtime, options);
  // A stricter navm grammar whose tasksystem admits no arrays at all:
  // the first array creation makes the reflected H-graph non-conformant.
  analyzer.set_layer_grammar(Layer::Navm, hgraph::parse_grammar(R"(
taskstate   ::= STRING
task        ::= { id: INT, type: STRING, parent: INT, cluster: INT,
                  state: taskstate, replication: INT, of: INT }
tasksystem  ::= { task[*]: task }
)"));

  s.runtime.define_task("builder", [](navm::TaskContext& ctx) -> navm::Coro {
    (void)ctx.create_vector({1.0, 2.0, 3.0});
    co_await ctx.yield();
    co_return sysvm::Payload{};
  });
  s.runtime.launch("builder");
  s.runtime.run();

  const auto& findings = analyzer.findings();
  ASSERT_TRUE(has_rule(findings, "tasksystem")) << dump(findings);
  const auto* f = first_with_rule(findings, "tasksystem");
  EXPECT_EQ(f->pass, Pass::Conformance);
  EXPECT_EQ(f->layer, Layer::Navm);
  EXPECT_NE(f->message.find("array"), std::string::npos) << f->message;
  // Attribution: the recent-activity trail names the step that broke it.
  EXPECT_NE(f->evidence.find("step of task"), std::string::npos)
      << f->evidence;
}

// --- zero false positives on a clean distributed solve ----------------------

TEST(Analyzer, CleanDistributedSolveHasZeroFindings) {
  Stack s;
  navm::register_parallel_ops(s.runtime);
  AnalyzerOptions options;
  options.snapshot_stride = 16;
  Analyzer analyzer(s.runtime, options);

  const auto model = fem::make_cantilever_plate({.nx = 8, .ny = 4}, 50.0);
  const auto result = fem::solve_static_parallel(model, "tip-shear",
                                                 s.runtime, {.workers = 4});
  analyzer.check_now();

  EXPECT_TRUE(analyzer.findings().empty()) << dump(analyzer.findings());
  EXPECT_GT(result.stats.iterations, 0u);
  const auto stats = analyzer.stats();
  EXPECT_GT(stats.steps_observed, 0u);
  EXPECT_GT(stats.accesses_tracked, 0u);
  EXPECT_GT(stats.snapshots, 0u);
  EXPECT_GT(stats.messages_checked, 0u);
}

}  // namespace
}  // namespace fem2::analyze
