// Golden-solution solver equivalence sweep: every modelled scene solved by
// dense Cholesky (the reference), skyline, CG+Jacobi, and CG+two-level
// must agree within kAgreementTol; CG iteration counts are asserted
// against recorded bounds so a preconditioner regression fails loudly.
// Also pins the duplicate-constraint behavior in assembly (deduplicated,
// conflicting values rejected) for both the skyline and CSR paths, and the
// distributed CG on the simulated machine with and without Jacobi
// preconditioning.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "fem/mesh.hpp"
#include "fem/passembly.hpp"
#include "fem/solver.hpp"
#include "navm/parops.hpp"

namespace fem2 {
namespace {

using fem::ElementType;
using fem::Material;
using fem::SolverKind;
using fem::StructureModel;

/// Stated agreement tolerance: displacement inf-norm error relative to the
/// dense reference, with CG run at 1e-12 residual.  Conditioning of the
/// plate scenes amplifies the residual by ~1e4, so 1e-6 has ~2 orders of
/// headroom while still catching any assembly or preconditioner defect.
constexpr double kAgreementTol = 1e-6;

Material soft_material() {
  Material m;
  m.youngs_modulus = 1000.0;
  m.poisson_ratio = 0.25;
  m.area = 0.01;
  m.moment_of_inertia = 1e-4;
  m.thickness = 0.1;
  return m;
}

struct Scene {
  std::string name;
  StructureModel model;
  std::string load_set;
  std::size_t max_iters_jacobi;     ///< recorded bound for CG+Jacobi
  std::size_t max_iters_two_level;  ///< recorded bound for CG+two-level
};

StructureModel axial_bar() {
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(1.5, 0);
  model.add_element(ElementType::Bar2, {0, 1}, mat);
  model.fix_node(0);
  model.add_constraint(1, 1);
  model.add_load("axial", 1, 0, 50.0);
  return model;
}

StructureModel prescribed_chain() {
  // Two-bar chain with a prescribed end displacement (nonzero u_c moves
  // through the rhs correction).
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_node(2, 0);
  model.add_element(ElementType::Bar2, {0, 1}, mat);
  model.add_element(ElementType::Bar2, {1, 2}, mat);
  model.add_constraint(0, 0, 0.0);
  model.add_constraint(0, 1);
  model.add_constraint(1, 1);
  model.add_constraint(2, 1);
  model.add_constraint(2, 0, 0.1);
  model.load_set("none");
  return model;
}

/// The fem_test / fem1_test scene catalogue: bar, beam, quad and tri
/// plates, truss bridge, the stiff (70 GPa) fem1 plate, and the
/// prescribed-displacement chain.  Iteration bounds are recorded from the
/// current solvers with ~30% headroom.
std::vector<Scene> scenes() {
  std::vector<Scene> out;
  out.push_back({"axial-bar", axial_bar(), "axial", 2, 2});

  fem::FrameOptions beam;
  beam.segments = 8;
  beam.length = 4.0;
  beam.material = soft_material();
  out.push_back(
      {"cantilever-beam", fem::make_cantilever_beam(beam, 10.0), "tip", 30, 4});

  fem::PlateMeshOptions quad;
  quad.nx = 8;
  quad.ny = 4;
  quad.material = soft_material();
  out.push_back({"plate-quad4", fem::make_cantilever_plate(quad, 5.0),
                 "tip-shear", 50, 30});

  fem::PlateMeshOptions tri = quad;
  tri.element = ElementType::Tri3;
  out.push_back({"plate-tri3", fem::make_cantilever_plate(tri, 5.0),
                 "tip-shear", 95, 40});

  fem::TrussOptions truss;
  truss.bays = 6;
  truss.material = soft_material();
  out.push_back({"truss-bridge", fem::make_truss_bridge(truss, 2.0), "deck",
                 33, 3});

  fem::PlateMeshOptions stiff;
  stiff.nx = 12;
  stiff.ny = 4;
  stiff.material.youngs_modulus = 70e9;
  stiff.material.thickness = 0.004;
  out.push_back({"plate-stiff", fem::make_cantilever_plate(stiff, 1'500.0),
                 "tip-shear", 70, 52});

  out.push_back({"prescribed-chain", prescribed_chain(), "none", 2, 2});
  return out;
}

double max_abs_error(const fem::Displacements& a, const fem::Displacements& b) {
  EXPECT_EQ(a.values.size(), b.values.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i)
    m = std::max(m, std::abs(a.values[i] - b.values[i]));
  return m;
}

double max_abs(const fem::Displacements& u) {
  double m = 0.0;
  for (const double v : u.values) m = std::max(m, std::abs(v));
  return m;
}

TEST(SolverEquivalence, AllPathsAgreeOnEveryScene) {
  for (const Scene& scene : scenes()) {
    SCOPED_TRACE(scene.name);
    const auto reference = fem::solve_static(
        scene.model, scene.load_set, {.kind = SolverKind::DenseCholesky});
    const double scale = std::max(1.0, max_abs(reference.displacements));

    const auto skyline = fem::solve_static(
        scene.model, scene.load_set, {.kind = SolverKind::SkylineDirect});
    EXPECT_LE(max_abs_error(skyline.displacements, reference.displacements),
              kAgreementTol * scale);

    const auto jacobi = fem::solve_static(scene.model, scene.load_set,
                                          {.kind = SolverKind::PreconditionedCg,
                                           .tolerance = 1e-12});
    EXPECT_TRUE(jacobi.stats.converged);
    EXPECT_LE(max_abs_error(jacobi.displacements, reference.displacements),
              kAgreementTol * scale);
    EXPECT_LE(jacobi.stats.iterations, scene.max_iters_jacobi)
        << "CG+Jacobi iteration count regressed";

    const auto two_level = fem::solve_static(scene.model, scene.load_set,
                                             {.kind = SolverKind::TwoLevelCg,
                                              .tolerance = 1e-12});
    EXPECT_TRUE(two_level.stats.converged);
    EXPECT_EQ(two_level.stats.method, "pcg-two-level");
    EXPECT_LE(max_abs_error(two_level.displacements, reference.displacements),
              kAgreementTol * scale);
    EXPECT_LE(two_level.stats.iterations, scene.max_iters_two_level)
        << "CG+two-level iteration count regressed";
  }
}

TEST(SolverEquivalence, TwoLevelBeatsJacobiOnTheLargePlate) {
  // The coarse grid carries the long-wavelength cantilever modes that make
  // plain Jacobi crawl; on the biggest plate the two-level preconditioner
  // must need strictly fewer iterations.
  fem::PlateMeshOptions options;
  options.nx = 16;
  options.ny = 8;
  options.material = soft_material();
  const auto model = fem::make_cantilever_plate(options, 5.0);

  const auto jacobi = fem::solve_static(model, "tip-shear",
                                        {.kind = SolverKind::PreconditionedCg,
                                         .tolerance = 1e-10});
  const auto two_level = fem::solve_static(
      model, "tip-shear",
      {.kind = SolverKind::TwoLevelCg, .tolerance = 1e-10});
  EXPECT_TRUE(jacobi.stats.converged);
  EXPECT_TRUE(two_level.stats.converged);
  EXPECT_LT(two_level.stats.iterations, jacobi.stats.iterations);
}

// --- duplicate constraints ----------------------------------------------------

StructureModel duplicate_constraint_plate(bool duplicated) {
  fem::PlateMeshOptions options;
  options.nx = 6;
  options.ny = 3;
  options.material = soft_material();
  StructureModel model = fem::make_cantilever_plate(options, 5.0);
  if (duplicated) {
    // Re-state existing constraints (same values), as overlapping boundary
    // groups in scene files routinely do.
    const auto constraints = model.constraints;
    for (const auto& c : constraints) model.add_constraint(c.node, c.dof, c.value);
  }
  return model;
}

TEST(DuplicateConstraints, DeduplicatedForSkylineAndCsr) {
  const auto clean = duplicate_constraint_plate(false);
  const auto doubled = duplicate_constraint_plate(true);

  // Same reduced system: constraint duplication must not change the
  // sparsity, the values, or any solver's answer.
  const auto sys_clean = fem::assemble(clean);
  const auto sys_doubled = fem::assemble(doubled);
  EXPECT_EQ(sys_clean.dofs.free_dofs, sys_doubled.dofs.free_dofs);
  EXPECT_EQ(sys_clean.stiffness.nonzeros(), sys_doubled.stiffness.nonzeros());
  EXPECT_EQ(sys_clean.stiffness.values().size(),
            sys_doubled.stiffness.values().size());
  for (std::size_t i = 0; i < sys_clean.stiffness.values().size(); ++i)
    EXPECT_EQ(sys_clean.stiffness.values()[i],
              sys_doubled.stiffness.values()[i]);

  for (const SolverKind kind :
       {SolverKind::SkylineDirect, SolverKind::PreconditionedCg}) {
    const auto a = fem::solve_static(clean, "tip-shear", {.kind = kind});
    const auto b = fem::solve_static(doubled, "tip-shear", {.kind = kind});
    EXPECT_EQ(max_abs_error(a.displacements, b.displacements), 0.0)
        << fem::solver_kind_name(kind);
  }
}

TEST(DuplicateConstraints, ConflictingValuesThrow) {
  StructureModel model = axial_bar();
  model.add_constraint(1, 1, 0.25);  // node 1 dof 1 already constrained to 0
  EXPECT_THROW((void)fem::assemble(model), support::Error);
  EXPECT_THROW((void)fem::solve_static(model, "axial", {}), support::Error);
}

// --- distributed CG on the simulated machine ---------------------------------

struct Fem2Stack {
  hw::Machine machine;
  sysvm::Os os;
  navm::Runtime runtime;

  Fem2Stack() : machine(config()), os(machine), runtime(os) {
    navm::register_parallel_ops(runtime);
  }

  static hw::MachineConfig config() {
    hw::MachineConfig c;
    c.clusters = 4;
    c.pes_per_cluster = 4;
    c.memory_per_cluster = 64u << 20;
    return c;
  }
};

TEST(SolverEquivalence, DistributedCgMatchesHostSolvers) {
  fem::PlateMeshOptions options;
  options.nx = 12;
  options.ny = 4;
  options.material = soft_material();
  const auto model = fem::make_cantilever_plate(options, 5.0);
  const auto reference = fem::solve_static(
      model, "tip-shear", {.kind = SolverKind::DenseCholesky});
  const double scale = std::max(1.0, max_abs(reference.displacements));

  fem::ParallelSolveOptions popts;
  popts.workers = 4;
  popts.tolerance = 1e-10;

  Fem2Stack plain;
  const auto cg = fem::solve_static_parallel(model, "tip-shear", plain.runtime,
                                             popts);
  EXPECT_TRUE(cg.stats.converged);
  EXPECT_EQ(cg.stats.method, "fem2-distributed-cg");
  EXPECT_LE(max_abs_error(cg.displacements, reference.displacements),
            kAgreementTol * scale);

  popts.jacobi_preconditioner = true;
  Fem2Stack pre;
  const auto pcg = fem::solve_static_parallel(model, "tip-shear", pre.runtime,
                                              popts);
  EXPECT_TRUE(pcg.stats.converged);
  EXPECT_EQ(pcg.stats.method, "fem2-distributed-pcg-jacobi");
  EXPECT_LE(max_abs_error(pcg.displacements, reference.displacements),
            kAgreementTol * scale);

  // Diagonal preconditioning must not cost iterations on this mesh.
  EXPECT_LE(pcg.stats.iterations, cg.stats.iterations);

  // Determinism: an identical run is bit-identical (at any host thread
  // count — CI repeats this suite under tsan with FEM2_HOST_THREADS=4).
  Fem2Stack again;
  const auto pcg2 = fem::solve_static_parallel(model, "tip-shear",
                                               again.runtime, popts);
  EXPECT_EQ(pcg2.stats.iterations, pcg.stats.iterations);
  EXPECT_EQ(max_abs_error(pcg2.displacements, pcg.displacements), 0.0);
}

TEST(SolverEquivalence, ParallelAssemblyBitwiseMatchesSerial) {
  // The symbolic-pattern fill makes the host merge accumulate in exactly
  // the serial element order: the assembled values must be bitwise equal.
  fem::PlateMeshOptions options;
  options.nx = 8;
  options.ny = 4;
  options.material = soft_material();
  const auto model = fem::make_cantilever_plate(options, 5.0);

  const auto serial = fem::assemble(model);
  Fem2Stack stack;
  fem::register_assembly_tasks(stack.runtime);
  const auto parallel = fem::assemble_parallel(model, stack.runtime, 4);

  ASSERT_EQ(parallel.stiffness.nonzeros(), serial.stiffness.nonzeros());
  for (std::size_t i = 0; i < serial.stiffness.values().size(); ++i)
    EXPECT_EQ(parallel.stiffness.values()[i], serial.stiffness.values()[i]);
  ASSERT_EQ(parallel.rhs_correction.size(), serial.rhs_correction.size());
  for (std::size_t i = 0; i < serial.rhs_correction.size(); ++i)
    EXPECT_EQ(parallel.rhs_correction[i], serial.rhs_correction[i]);
}

}  // namespace
}  // namespace fem2
