// Fault model, reliable messaging, and cluster-loss recovery:
//  * hw: cluster kills, lossy/severable links, the deterministic
//    FaultInjector;
//  * sysvm: sequenced/acked/retransmitted inter-cluster transport, task
//    relocation and tree restart after a cluster loss, heap exhaustion;
//  * end to end: a chaos run (cluster kill + PE kills + packet loss) must
//    produce bit-for-bit the displacements of a fault-free run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fem/mesh.hpp"
#include "fem/passembly.hpp"
#include "fem/solver.hpp"
#include "hw/fault.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "support/check.hpp"
#include "sysvm/os.hpp"

namespace fem2 {
namespace {

hw::MachineConfig machine_config(std::size_t clusters = 4,
                                 std::size_t ppc = 4) {
  hw::MachineConfig c;
  c.clusters = clusters;
  c.pes_per_cluster = ppc;
  c.memory_per_cluster = 64u << 20;
  return c;
}

struct Stack {
  hw::Machine machine;
  sysvm::Os os;
  navm::Runtime runtime;

  explicit Stack(hw::MachineConfig config = machine_config(),
                 sysvm::OsOptions options = {})
      : machine(config), os(machine, options), runtime(os) {
    navm::register_parallel_ops(runtime);
    fem::register_assembly_tasks(runtime);
    fem::register_stress_tasks(runtime);
  }
};

sysvm::OsOptions reliable() {
  sysvm::OsOptions o;
  o.reliable_transport = true;
  return o;
}

// --- hw fault model ---------------------------------------------------------

TEST(HwFaults, FailClusterPurgesStateAndFiresHandlerOnce) {
  hw::Machine machine(machine_config(3, 2));
  const hw::ClusterId victim{1};
  int fired = 0;
  machine.set_cluster_lost_handler([&](hw::ClusterId c) {
    ++fired;
    EXPECT_EQ(c.index, victim.index);
  });
  machine.allocate(victim, 4096);

  machine.fail_cluster(victim);
  EXPECT_FALSE(machine.cluster_alive(victim));
  EXPECT_TRUE(machine.cluster_alive(hw::ClusterId{0}));
  EXPECT_EQ(machine.alive_clusters(), 2u);
  EXPECT_EQ(machine.failed_cluster_count(), 1u);
  EXPECT_EQ(machine.alive_pes(victim), 0u);
  EXPECT_EQ(machine.memory_in_use(victim), 0u);
  EXPECT_EQ(machine.queue_depth(victim), 0u);
  EXPECT_EQ(fired, 1);

  machine.fail_cluster(victim);  // idempotent
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(machine.failed_cluster_count(), 1u);
}

TEST(HwFaults, PeKillCascadeBecomesClusterLoss) {
  hw::Machine machine(machine_config(2, 3));
  int fired = 0;
  machine.set_cluster_lost_handler([&](hw::ClusterId) { ++fired; });
  for (std::uint32_t p = 0; p < 3; ++p) {
    machine.fail_pe({hw::ClusterId{0}, p});
    EXPECT_EQ(fired, p == 2 ? 1 : 0);
  }
  EXPECT_FALSE(machine.cluster_alive(hw::ClusterId{0}));

  // Restoring a PE resurrects the cluster (blank, but alive).
  machine.restore_pe({hw::ClusterId{0}, 0});
  EXPECT_TRUE(machine.cluster_alive(hw::ClusterId{0}));
  EXPECT_EQ(machine.failed_cluster_count(), 0u);
}

TEST(HwFaults, SeveredLinkDropsEverySentPacket) {
  hw::Machine machine(machine_config(2, 1));
  const hw::ClusterId a{0}, b{1};
  machine.fail_link(a, b);
  EXPECT_TRUE(machine.link_severed(a, b));
  EXPECT_FALSE(machine.link_severed(b, a));  // directed

  machine.send_packet(a, b, 128, std::any{});
  machine.engine().run();
  EXPECT_EQ(machine.queue_depth(b), 0u);
  EXPECT_EQ(machine.metrics().network.dropped_messages, 1u);
  EXPECT_EQ(machine.metrics().network.dropped_bytes, 128u);

  machine.restore_link(a, b);
  machine.send_packet(a, b, 128, std::any{});
  machine.engine().run();
  EXPECT_EQ(machine.queue_depth(b), 1u);
  EXPECT_EQ(machine.metrics().network.dropped_messages, 1u);
}

TEST(HwFaults, LossyNetworkDropsSomePacketsDeterministically) {
  auto count_drops = [] {
    hw::Machine machine(machine_config(2, 1));
    machine.set_drop_probability(0.5);
    for (int i = 0; i < 100; ++i)
      machine.send_packet(hw::ClusterId{0}, hw::ClusterId{1}, 64, std::any{});
    machine.engine().run();
    return machine.metrics().network.dropped_messages;
  };
  const auto a = count_drops();
  EXPECT_GT(a, 0u);
  EXPECT_LT(a, 100u);
  EXPECT_EQ(a, count_drops());  // seeded: same lottery every run
}

TEST(HwFaults, IntraClusterTrafficIsNeverDropped) {
  hw::Machine machine(machine_config(2, 1));
  machine.set_drop_probability(0.99);
  for (int i = 0; i < 50; ++i)
    machine.send_packet(hw::ClusterId{0}, hw::ClusterId{0}, 64, std::any{});
  machine.engine().run();
  EXPECT_EQ(machine.metrics().network.dropped_messages, 0u);
  EXPECT_EQ(machine.queue_depth(hw::ClusterId{0}), 50u);
}

// --- fault plans and the injector -------------------------------------------

TEST(FaultPlan, RandomizedPlanRespectsSpec) {
  const auto config = machine_config(4, 4);
  hw::ChaosSpec spec;
  spec.window_begin = 1'000;
  spec.window_end = 9'000;
  spec.pe_kills = 3;
  spec.cluster_kills = 2;
  spec.link_cuts = 1;
  spec.drop_probability = 0.02;
  const auto plan = hw::FaultPlan::randomized(config, spec, 42);

  std::size_t cluster_kills = 0, pe_kills = 0, link_cuts = 0, drops = 0;
  hw::Cycles previous = 0;
  for (const auto& action : plan.actions()) {
    EXPECT_GE(action.at, spec.window_begin);
    EXPECT_GE(action.at, previous);  // sorted by time
    previous = action.at;
    switch (action.kind) {
      case hw::FaultAction::Kind::FailCluster:
        ++cluster_kills;
        break;
      case hw::FaultAction::Kind::FailPe:
        ++pe_kills;
        EXPECT_NE(action.pe, 0u);  // PE 0 is spared
        break;
      case hw::FaultAction::Kind::FailLink:
        ++link_cuts;
        break;
      case hw::FaultAction::Kind::SetDropProbability:
        ++drops;
        EXPECT_EQ(action.probability, spec.drop_probability);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(cluster_kills, 2u);
  EXPECT_EQ(pe_kills, 3u);
  EXPECT_EQ(link_cuts, 1u);
  EXPECT_EQ(drops, 1u);
  EXPECT_FALSE(plan.describe().empty());

  // Same seed, same plan; different seed, (almost surely) different plan.
  EXPECT_EQ(hw::FaultPlan::randomized(config, spec, 42).describe(),
            plan.describe());
  EXPECT_NE(hw::FaultPlan::randomized(config, spec, 43).describe(),
            plan.describe());
}

TEST(FaultPlan, RandomizedRejectsKillingEveryCluster) {
  hw::ChaosSpec spec;
  spec.window_end = 100;
  spec.cluster_kills = 4;
  EXPECT_THROW(hw::FaultPlan::randomized(machine_config(4, 4), spec, 1),
               support::CheckError);
}

TEST(FaultInjector, AppliesActionsAtTheirScheduledTimes) {
  hw::Machine machine(machine_config(2, 2));
  hw::FaultPlan plan;
  plan.fail_pe(500, hw::ClusterId{0}, 1)
      .fail_cluster(800, hw::ClusterId{1})
      .set_drop_probability(900, 0.25);
  hw::FaultInjector injector(machine, std::move(plan));
  injector.arm();
  machine.engine().run();

  EXPECT_EQ(injector.fired(), 3u);
  EXPECT_FALSE(machine.pe_alive({hw::ClusterId{0}, 1}));
  EXPECT_TRUE(machine.pe_alive({hw::ClusterId{0}, 0}));
  EXPECT_FALSE(machine.cluster_alive(hw::ClusterId{1}));
  EXPECT_EQ(machine.now(), 900u);
}

// --- reliable transport -----------------------------------------------------

TEST(ReliableTransport, SolvesCorrectlyOnAVeryLossyNetwork) {
  const auto model = fem::make_cantilever_plate({.nx = 10, .ny = 4}, 90.0);
  const auto reference = fem::solve_static(
      model, "tip-shear", {.kind = fem::SolverKind::SkylineDirect});

  auto run_once = [&] {
    Stack stack(machine_config(4, 4), reliable());
    stack.machine.set_drop_probability(0.3);
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", stack.runtime, {.workers = 8,
                                            .tolerance = 1e-11});
    struct Outcome {
      double tip;
      std::uint64_t retransmissions;
      std::uint64_t acks;
      std::uint64_t dropped;
    };
    return Outcome{solution.displacements.values.back(),
                   stack.os.stats().retransmissions,
                   stack.os.stats().acks_sent,
                   stack.machine.metrics().network.dropped_messages};
  };

  const auto a = run_once();
  const double want = reference.displacements.values.back();
  EXPECT_NEAR(a.tip, want, std::abs(want) * 1e-5 + 1e-12);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_GT(a.acks, 0u);

  // The loss lottery and the recovery protocol are both deterministic.
  const auto b = run_once();
  EXPECT_EQ(a.tip, b.tip);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(ReliableTransport, OffByDefaultAddsNoProtocolTraffic) {
  const auto model = fem::make_cantilever_plate({.nx = 8, .ny = 3}, 50.0);
  Stack stack;
  (void)fem::solve_static_parallel(model, "tip-shear", stack.runtime,
                                   {.workers = 4});
  EXPECT_EQ(stack.os.stats().retransmissions, 0u);
  EXPECT_EQ(stack.os.stats().acks_sent, 0u);
  EXPECT_EQ(stack.os.stats().duplicates_dropped, 0u);
}

TEST(ReliableTransport, PermanentlySeveredLinkRaisesUnreachableError) {
  hw::Machine machine(machine_config(2, 2));
  auto options = reliable();
  options.max_retransmits = 3;
  sysvm::Os os(machine, options);
  machine.fail_link(hw::ClusterId{0}, hw::ClusterId{1});

  os.post(hw::ClusterId{0}, hw::ClusterId{1},
          sysvm::Message{sysvm::MsgLoadCode{"never-arrives", 64}});
  try {
    os.run();
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unreachable"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(os.stats().retransmissions, 3u);
}

// --- cluster-loss recovery --------------------------------------------------

TEST(Recovery, ClusterKillMidAssemblyRelocatesWorkAndMatchesSequential) {
  const auto model = fem::make_cantilever_plate({.nx = 10, .ny = 5}, 80.0);
  const auto sequential = fem::assemble(model);

  // Measure the fault-free duration, then kill a cluster halfway through.
  hw::Cycles duration = 0;
  {
    Stack stack(machine_config(4, 2), reliable());
    (void)fem::assemble_parallel(model, stack.runtime, 12);
    duration = stack.machine.now();
  }

  Stack stack(machine_config(4, 2), reliable());
  stack.machine.engine().schedule_at(duration / 2, [&] {
    stack.machine.fail_cluster(hw::ClusterId{3});
  });
  const auto parallel = fem::assemble_parallel(model, stack.runtime, 12);

  EXPECT_EQ(stack.os.stats().clusters_lost, 1u);
  EXPECT_GT(stack.os.stats().tasks_relocated, 0u);
  la::DenseMatrix diff = parallel.stiffness.to_dense();
  diff.add_scaled(sequential.stiffness.to_dense(), -1.0);
  EXPECT_LT(diff.max_abs(), 1e-9 * sequential.stiffness.to_dense().max_abs());
}

TEST(Recovery, KillingEveryClusterRaisesCleanErrorNotAHang) {
  const auto model = fem::make_cantilever_plate({.nx = 10, .ny = 5}, 80.0);
  hw::Cycles duration = 0;
  {
    Stack stack(machine_config(3, 2), reliable());
    (void)fem::assemble_parallel(model, stack.runtime, 8);
    duration = stack.machine.now();
  }

  Stack stack(machine_config(3, 2), reliable());
  stack.machine.engine().schedule_at(duration / 2, [&] {
    for (std::uint32_t c = 0; c < 3; ++c)
      stack.machine.fail_cluster(hw::ClusterId{c});
  });
  try {
    (void)fem::assemble_parallel(model, stack.runtime, 8);
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unrecoverable"), std::string::npos)
        << e.what();
  }
}

// --- heap exhaustion --------------------------------------------------------

TEST(HeapExhaustion, FailedAllocationsAreCounted) {
  sysvm::Heap heap(1024);
  EXPECT_EQ(heap.allocate(4096), sysvm::Heap::kNullAddress);
  EXPECT_EQ(heap.stats().failed_allocations, 1u);
  EXPECT_NE(heap.allocate(512), sysvm::Heap::kNullAddress);
  EXPECT_EQ(heap.stats().failed_allocations, 1u);
}

navm::Coro memory_hog_body(navm::TaskContext& ctx) {
  // Far beyond memory_per_cluster below: the allocation must fail.
  ctx.api().heap_allocate(std::size_t{1} << 30);
  co_return sysvm::Payload{};
}

TEST(HeapExhaustion, TaskAllocationBeyondCapacityThrowsOutOfMemory) {
  auto config = machine_config(2, 2);
  config.memory_per_cluster = 1u << 20;
  Stack stack(config);
  stack.runtime.define_task("test.hog", memory_hog_body, {256, 1024});
  (void)stack.runtime.launch("test.hog");
  EXPECT_THROW(stack.runtime.run(), hw::OutOfMemory);

  std::uint64_t failed = 0;
  for (std::uint32_t c = 0; c < 2; ++c)
    failed += stack.os.heap(hw::ClusterId{c}).stats().failed_allocations;
  EXPECT_GE(failed, 1u);
}

// --- payload diagnostics ----------------------------------------------------

TEST(Payload, MismatchNamesExpectedAndActualTypes) {
  const auto p = sysvm::Payload::of(42, 8);
  try {
    (void)p.as<double>();
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("payload type mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find(typeid(double).name()), std::string::npos) << msg;
    EXPECT_NE(msg.find(typeid(int).name()), std::string::npos) << msg;
  }
}

TEST(Payload, MismatchOnEmptyPayloadSaysEmpty) {
  const sysvm::Payload empty;
  try {
    (void)empty.as<int>();
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    EXPECT_NE(std::string(e.what()).find("<empty>"), std::string::npos)
        << e.what();
  }
}

// --- the chaos headline -----------------------------------------------------

struct PipelineOutcome {
  std::vector<double> displacements;
  std::vector<double> von_mises;
  hw::Cycles assembly_done = 0;
  hw::Cycles solve_done = 0;
  sysvm::OsStats stats;
};

// assemble -> distributed CG -> stress recovery, optionally with a seeded
// chaos plan armed between assembly and solve (so the cluster kill lands
// after the solve has started).
PipelineOutcome run_pipeline(const fem::StructureModel& model,
                             bool chaos, hw::Cycles solve_window = 0) {
  Stack stack(machine_config(4, 4), reliable());
  const auto system = fem::assemble_parallel(model, stack.runtime, 8);
  const hw::Cycles t0 = stack.machine.now();

  std::unique_ptr<hw::FaultInjector> injector;
  if (chaos) {
    hw::ChaosSpec spec;
    spec.window_begin = t0 + solve_window / 20;
    spec.window_end = t0 + solve_window / 2;
    spec.cluster_kills = 1;
    spec.pe_kills = 2;
    spec.drop_probability = 0.01;
    injector = std::make_unique<hw::FaultInjector>(
        stack.machine,
        hw::FaultPlan::randomized(stack.machine.config(), spec, 0xc4a05));
    injector->arm();
  }

  navm::CgProblem problem;
  problem.a = system.stiffness;
  problem.b = system.load_vector(model.load_sets.at("tip-shear"));
  problem.workers = 8;
  problem.tolerance = 1e-11;
  const auto task = stack.runtime.launch(navm::kCgDriverTask,
                                         navm::make_cg_problem(problem));
  stack.runtime.run();
  FEM2_CHECK_MSG(stack.os.task_finished(task), "chaos solve did not finish");
  const auto& cg = navm::as_cg_result(stack.runtime.result(task));
  FEM2_CHECK_MSG(cg.converged, "chaos solve did not converge");

  PipelineOutcome out;
  out.assembly_done = t0;
  out.solve_done = stack.machine.now();
  const auto displacements = system.expand(cg.x);
  out.displacements = displacements.values;
  for (const auto& s : fem::compute_stresses_parallel(
           model, displacements, stack.runtime, 6))
    out.von_mises.push_back(s.von_mises);
  out.stats = stack.os.stats();
  if (chaos) {
    // Every planned fault actually fired during the run.
    FEM2_CHECK(injector->fired() == injector->plan().size());
  }
  return out;
}

TEST(Chaos, FaultedPipelineMatchesFaultFreeRunBitForBit) {
  const auto model = fem::make_cantilever_plate({.nx = 12, .ny = 4}, 120.0);

  const auto clean = run_pipeline(model, false);
  const hw::Cycles solve_window = clean.solve_done - clean.assembly_done;
  const auto faulted = run_pipeline(model, true, solve_window);

  // The faults really happened...
  EXPECT_EQ(faulted.stats.clusters_lost, 1u);
  EXPECT_GT(faulted.stats.retransmissions, 0u);
  EXPECT_GT(faulted.stats.tasks_relocated, 0u);
  EXPECT_GT(faulted.stats.tasks_relocated + faulted.stats.trees_restarted,
            0u);
  EXPECT_GT(faulted.solve_done, clean.solve_done);  // recovery costs time

  // ...and the numbers are still bit-for-bit those of the clean run.
  ASSERT_EQ(faulted.displacements.size(), clean.displacements.size());
  for (std::size_t i = 0; i < clean.displacements.size(); ++i)
    EXPECT_EQ(faulted.displacements[i], clean.displacements[i]) << "dof " << i;
  ASSERT_EQ(faulted.von_mises.size(), clean.von_mises.size());
  for (std::size_t i = 0; i < clean.von_mises.size(); ++i)
    EXPECT_EQ(faulted.von_mises[i], clean.von_mises[i]) << "element " << i;
}

}  // namespace
}  // namespace fem2
