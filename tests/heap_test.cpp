// Heap property tests: random alloc/free traces must keep the free list
// coalesced and the address space exactly tiled, under every policy.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "sysvm/heap.hpp"

namespace fem2::sysvm {
namespace {

TEST(Heap, BasicAllocateFree) {
  Heap heap(1024);
  const auto a = heap.allocate(100);
  ASSERT_NE(a, Heap::kNullAddress);
  EXPECT_EQ(heap.block_size(a), 104u);  // aligned to 8
  EXPECT_EQ(heap.in_use(), 104u);
  heap.free(a);
  EXPECT_EQ(heap.in_use(), 0u);
  EXPECT_EQ(heap.largest_free_block(), 1024u);
}

TEST(Heap, ExhaustionReturnsNull) {
  Heap heap(256);
  const auto a = heap.allocate(200);
  ASSERT_NE(a, Heap::kNullAddress);
  EXPECT_EQ(heap.allocate(100), Heap::kNullAddress);
  EXPECT_EQ(heap.stats().failed_allocations, 1u);
  heap.free(a);
  EXPECT_NE(heap.allocate(100), Heap::kNullAddress);
}

TEST(Heap, CoalescesNeighbors) {
  Heap heap(1024);
  const auto a = heap.allocate(128);
  const auto b = heap.allocate(128);
  const auto c = heap.allocate(128);
  heap.free(a);
  heap.free(c);  // merges with the tail block
  EXPECT_EQ(heap.free_list_length(), 2u);  // hole at 0 + merged tail
  heap.free(b);  // merges everything
  EXPECT_EQ(heap.free_list_length(), 1u);
  heap.check_invariants();
}

TEST(Heap, FreeingUnknownAddressIsAnError) {
  Heap heap(1024);
  EXPECT_THROW(heap.free(64), support::CheckError);
  const auto a = heap.allocate(64);
  heap.free(a);
  EXPECT_THROW(heap.free(a), support::CheckError);  // double free
}

TEST(Heap, BestFitPicksTightestHole) {
  Heap heap(4096, HeapPolicy::BestFit);
  const auto a = heap.allocate(512);
  const auto b = heap.allocate(64);
  const auto c = heap.allocate(256);
  const auto d = heap.allocate(64);
  (void)b;
  (void)d;
  heap.free(a);  // hole of 512 at 0
  heap.free(c);  // hole of 256 in the middle
  // A 200-byte request should land in the 256 hole, not the 512 one.
  const auto e = heap.allocate(200);
  EXPECT_EQ(e, 512u + 64u);
  heap.check_invariants();
}

TEST(Heap, FirstFitPicksLowestHole) {
  Heap heap(4096, HeapPolicy::FirstFit);
  const auto a = heap.allocate(512);
  const auto b = heap.allocate(64);
  const auto c = heap.allocate(256);
  (void)b;
  heap.free(a);
  heap.free(c);
  EXPECT_EQ(heap.allocate(200), 0u);
}

TEST(Heap, HighWaterTracksPeak) {
  Heap heap(2048);
  const auto a = heap.allocate(1000);
  const auto b = heap.allocate(500);
  heap.free(a);
  heap.free(b);
  EXPECT_EQ(heap.stats().high_water, 1504u);
  EXPECT_EQ(heap.in_use(), 0u);
}

class HeapPolicyTrace : public ::testing::TestWithParam<
                            std::tuple<HeapPolicy, std::uint64_t>> {};

TEST_P(HeapPolicyTrace, RandomTraceKeepsInvariants) {
  const auto [policy, seed] = GetParam();
  Heap heap(1u << 20, policy);
  support::Rng rng(seed);
  std::vector<std::size_t> live;
  std::size_t allocated_bytes = 0;
  std::size_t successes = 0;

  for (int op = 0; op < 5'000; ++op) {
    if (live.empty() || rng.chance(0.6)) {
      const std::size_t bytes = 1 + rng.next_below(4096);
      const auto address = heap.allocate(bytes);
      if (address != Heap::kNullAddress) {
        live.push_back(address);
        allocated_bytes += heap.block_size(address);
        ++successes;
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      allocated_bytes -= heap.block_size(live[pick]);
      heap.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    if (op % 257 == 0) heap.check_invariants();
    EXPECT_EQ(heap.in_use(), allocated_bytes);
    EXPECT_EQ(heap.live_blocks(), live.size());
  }
  heap.check_invariants();
  EXPECT_GT(successes, 1000u);

  // Free everything: the heap must return to one pristine block.
  for (const auto address : live) heap.free(address);
  heap.check_invariants();
  EXPECT_EQ(heap.in_use(), 0u);
  EXPECT_EQ(heap.free_list_length(), 1u);
  EXPECT_EQ(heap.largest_free_block(), 1u << 20);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, HeapPolicyTrace,
    ::testing::Combine(::testing::Values(HeapPolicy::FirstFit,
                                         HeapPolicy::BestFit,
                                         HeapPolicy::NextFit),
                       ::testing::Values(1u, 7u, 42u, 1234u)));

TEST(Heap, AlignmentRespected) {
  Heap heap(4096, HeapPolicy::FirstFit, 64);
  const auto a = heap.allocate(10);
  const auto b = heap.allocate(10);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(heap.block_size(a), 64u);
}

TEST(Heap, FragmentationMetricBehaves) {
  Heap heap(1024);
  EXPECT_EQ(heap.stats().external_fragmentation, 0.0);
  std::vector<std::size_t> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(heap.allocate(120));
  for (std::size_t i = 0; i < blocks.size(); i += 2) heap.free(blocks[i]);
  // Several equal holes: largest/total < 1 → fragmentation > 0.
  EXPECT_GT(heap.stats().external_fragmentation, 0.3);
}

}  // namespace
}  // namespace fem2::sysvm
