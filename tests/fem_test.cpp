// FEM substrate tests: element formulations against analytic solutions,
// solver agreement, substructuring equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "fem/analysis.hpp"
#include "fem/assembly.hpp"
#include "fem/element.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "fem/substructure.hpp"

namespace fem2::fem {
namespace {

Material soft_material() {
  Material m;
  m.youngs_modulus = 1000.0;
  m.poisson_ratio = 0.25;
  m.area = 0.01;
  m.moment_of_inertia = 1e-4;
  m.thickness = 0.1;
  return m;
}

TEST(FemElements, BarAxialStiffness) {
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(2, 0);
  model.add_element(ElementType::Bar2, {0, 1}, mat);
  const auto k = element_stiffness(model, model.elements[0]);
  const double ea_l = 1000.0 * 0.01 / 2.0;
  EXPECT_NEAR(k(0, 0), ea_l, 1e-12);
  EXPECT_NEAR(k(0, 2), -ea_l, 1e-12);
  EXPECT_NEAR(k(1, 1), 0.0, 1e-12);  // no transverse stiffness
  EXPECT_TRUE(k.is_symmetric());
}

TEST(FemElements, BarUnderAxialLoad) {
  // Fixed-free bar, axial tip force: delta = FL/EA, sigma = F/A.
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(1.5, 0);
  model.add_element(ElementType::Bar2, {0, 1}, mat);
  model.fix_node(0);
  model.add_constraint(1, 1);  // keep it 1-D
  model.add_load("axial", 1, 0, 50.0);

  const auto result = analyze(model, "axial");
  const double expected_delta = 50.0 * 1.5 / (1000.0 * 0.01);
  EXPECT_NEAR(result.solution.displacements.at(1, 0), expected_delta, 1e-9);
  EXPECT_NEAR(result.stresses[0].sigma_xx, 50.0 / 0.01, 1e-6);
}

TEST(FemElements, CantileverBeamTipDeflection) {
  // Euler-Bernoulli: delta_tip = P L^3 / (3 E I), exact for beam elements.
  FrameOptions options;
  options.segments = 8;
  options.length = 4.0;
  options.material = soft_material();
  const double p = 10.0;
  StructureModel model = make_cantilever_beam(options, p);

  const auto result = analyze(model, "tip",
                              {.kind = SolverKind::SkylineDirect});
  const double e = options.material.youngs_modulus;
  const double i = options.material.moment_of_inertia;
  const double expected = -p * std::pow(options.length, 3) / (3.0 * e * i);
  EXPECT_NEAR(result.solution.displacements.at(options.segments, 1), expected,
              std::abs(expected) * 1e-9);
}

TEST(FemElements, TriangleRigidBodyMotionHasNoStrainEnergy) {
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_node(0, 1);
  model.add_element(ElementType::Tri3, {0, 1, 2}, mat);
  const auto k = element_stiffness(model, model.elements[0]);
  // Uniform translation: zero force.
  const std::vector<double> translation = {1, 0, 1, 0, 1, 0};
  const auto f = k.multiply(translation);
  for (const double v : f) EXPECT_NEAR(v, 0.0, 1e-9);
  EXPECT_TRUE(k.is_symmetric(1e-9));
}

TEST(FemElements, Quad4PatchUniaxialStress) {
  // Single quad stretched along x: sigma_xx = E * strain / (1 - nu^2) *
  // adjusted; with free lateral contraction sigma_xx = E*eps_xx.
  StructureModel model;
  Material m = soft_material();
  m.poisson_ratio = 0.0;  // decouple for an exact hand value
  const auto mat = model.add_material(m);
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_node(1, 1);
  model.add_node(0, 1);
  model.add_element(ElementType::Quad4, {0, 1, 2, 3}, mat);

  Displacements u;
  u.dofs_per_node = 2;
  // eps_xx = 0.01 uniform.
  u.values = {0, 0, 0.01, 0, 0.01, 0, 0, 0};
  const auto s = element_stress(model, 0, u);
  EXPECT_NEAR(s.sigma_xx, 1000.0 * 0.01, 1e-9);
  EXPECT_NEAR(s.sigma_yy, 0.0, 1e-9);
  EXPECT_NEAR(s.tau_xy, 0.0, 1e-9);
}

TEST(FemSolvers, AllSolversAgreeOnCantileverPlate) {
  PlateMeshOptions options;
  options.nx = 8;
  options.ny = 4;
  options.material = soft_material();
  StructureModel model = make_cantilever_plate(options, 5.0);

  const auto reference =
      solve_static(model, "tip-shear", {.kind = SolverKind::DenseCholesky});
  const std::size_t tip = plate_node(options, options.nx, options.ny / 2);
  const double ref_tip = reference.displacements.at(tip, 1);
  EXPECT_LT(ref_tip, 0.0);  // deflects downward

  for (const SolverKind kind :
       {SolverKind::SkylineDirect, SolverKind::ConjugateGradient,
        SolverKind::PreconditionedCg, SolverKind::GaussSeidel,
        SolverKind::Sor}) {
    SolverOptions o;
    o.kind = kind;
    o.tolerance = 1e-12;
    o.max_iterations = 200'000;
    const auto solution = solve_static(model, "tip-shear", o);
    EXPECT_NEAR(solution.displacements.at(tip, 1), ref_tip,
                std::abs(ref_tip) * 1e-5)
        << solver_kind_name(kind);
  }
}

TEST(FemSolvers, TrussBridgeDeflectsDownAndBalances) {
  TrussOptions options;
  options.bays = 6;
  options.material = soft_material();
  StructureModel model = make_truss_bridge(options, 2.0);
  const auto result = analyze(model, "deck");
  ASSERT_TRUE(result.solution.stats.converged);
  // Midspan bottom node deflects downward.
  EXPECT_LT(result.solution.displacements.at(3, 1), 0.0);
  // Peak stress is finite and positive.
  EXPECT_GT(result.peak.von_mises, 0.0);
}

TEST(FemSubstructure, MatchesDirectSolve) {
  PlateMeshOptions options;
  options.nx = 12;
  options.ny = 4;
  options.material = soft_material();
  StructureModel model = make_cantilever_plate(options, 3.0);

  const auto direct =
      solve_static(model, "tip-shear", {.kind = SolverKind::DenseCholesky});
  const auto partition = partition_by_x(model, 4);
  SubstructureStats stats;
  const auto sub = solve_substructured(model, "tip-shear", partition, &stats);

  EXPECT_EQ(stats.substructures, 4u);
  EXPECT_GT(stats.interface_dofs, 0u);
  EXPECT_LT(stats.residual, 1e-8);
  for (std::size_t i = 0; i < direct.displacements.values.size(); ++i) {
    EXPECT_NEAR(sub.displacements.values[i], direct.displacements.values[i],
                1e-8 + std::abs(direct.displacements.values[i]) * 1e-6);
  }
}

TEST(FemAssembly, ConstraintEliminationAndPrescribedValues) {
  // Two-bar chain with a prescribed end displacement.
  StructureModel model;
  const auto mat = model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(1, 0);
  model.add_node(2, 0);
  model.add_element(ElementType::Bar2, {0, 1}, mat);
  model.add_element(ElementType::Bar2, {1, 2}, mat);
  model.add_constraint(0, 0, 0.0);
  model.add_constraint(0, 1);
  model.add_constraint(1, 1);
  model.add_constraint(2, 1);
  model.add_constraint(2, 0, 0.1);  // pull the right end out
  model.load_set("none");

  const auto solution =
      solve_static(model, "none", {.kind = SolverKind::DenseCholesky});
  // Middle node sits halfway by symmetry of the two identical bars.
  EXPECT_NEAR(solution.displacements.at(1, 0), 0.05, 1e-12);
  EXPECT_NEAR(solution.displacements.at(2, 0), 0.1, 1e-12);
}

TEST(FemElements, PlateMeshRefinementConverges) {
  // Tip deflection of the cantilever sheet must converge under mesh
  // refinement, and Tri3/Quad4 discretizations must approach the same
  // answer (Quad4 from above stiffness-wise, CST stiffer still).
  auto tip_deflection = [](std::size_t nx, std::size_t ny,
                           ElementType element) {
    PlateMeshOptions options;
    options.nx = nx;
    options.ny = ny;
    options.width = 2.0;
    options.height = 0.5;
    options.element = element;
    options.material = soft_material();
    const auto model = make_cantilever_plate(options, 1.0);
    const auto solution =
        solve_static(model, "tip-shear", {.kind = SolverKind::SkylineDirect});
    return solution.displacements.at(plate_node(options, nx, ny / 2), 1);
  };

  const double q_coarse = tip_deflection(8, 2, ElementType::Quad4);
  const double q_mid = tip_deflection(16, 4, ElementType::Quad4);
  const double q_fine = tip_deflection(32, 8, ElementType::Quad4);
  const double t_fine = tip_deflection(32, 8, ElementType::Tri3);

  // Displacement grows toward the true value as constraints are released.
  EXPECT_LT(q_fine, 0.0);
  EXPECT_GT(std::abs(q_mid), std::abs(q_coarse));
  EXPECT_GT(std::abs(q_fine), std::abs(q_mid));
  // Successive refinements change the answer less and less.
  EXPECT_LT(std::abs(q_fine - q_mid), std::abs(q_mid - q_coarse));
  // CST is stiffer but within ~15% of Quad4 at this resolution.
  EXPECT_LT(std::abs(t_fine), std::abs(q_fine));
  EXPECT_NEAR(t_fine, q_fine, std::abs(q_fine) * 0.15);
}

TEST(FemSolvers, MultipleLoadSetsShareTheFactorization) {
  PlateMeshOptions options;
  options.nx = 8;
  options.ny = 4;
  options.material = soft_material();
  StructureModel model = make_cantilever_plate(options, 5.0);
  // A second, different load case on the same structure.
  model.add_load("top-pull", plate_node(options, options.nx, options.ny), 0,
                 25.0);

  const auto all = solve_static_all_load_sets(
      model, {.kind = SolverKind::SkylineDirect});
  ASSERT_EQ(all.size(), 2u);
  for (const auto& [name, solution] : all) {
    const auto individual = solve_static(model, name,
                                         {.kind = SolverKind::SkylineDirect});
    for (std::size_t i = 0; i < individual.displacements.values.size(); ++i) {
      EXPECT_NEAR(solution.displacements.values[i],
                  individual.displacements.values[i], 1e-12)
          << name;
    }
    EXPECT_NE(solution.stats.method.find("shared factorization"),
              std::string::npos);
  }
  // The two load cases produce genuinely different responses.
  EXPECT_NE(all.at("tip-shear").displacements.values.back(),
            all.at("top-pull").displacements.values.back());
}

TEST(FemSolvers, MultipleLoadSetsIterativePath) {
  PlateMeshOptions options;
  options.nx = 6;
  options.ny = 3;
  options.material = soft_material();
  StructureModel model = make_cantilever_plate(options, 5.0);
  model.add_load("side", plate_node(options, options.nx, 0), 0, 10.0);
  const auto all = solve_static_all_load_sets(
      model, {.kind = SolverKind::PreconditionedCg, .tolerance = 1e-11});
  ASSERT_EQ(all.size(), 2u);
  for (const auto& [name, solution] : all)
    EXPECT_TRUE(solution.stats.converged) << name;
}

TEST(FemModel, ValidationCatchesErrors) {
  StructureModel empty;
  EXPECT_THROW(empty.validate(), support::Error);

  StructureModel model;
  model.add_material(soft_material());
  model.add_node(0, 0);
  model.add_node(0, 0);  // same location
  model.add_element(ElementType::Bar2, {0, 1});
  EXPECT_THROW(model.validate(), support::Error);  // zero length
}

}  // namespace
}  // namespace fem2::fem
