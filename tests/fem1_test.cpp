// FEM-1 baseline model tests.
#include <gtest/gtest.h>

#include "fem/mesh.hpp"
#include "fem1/fem1.hpp"
#include "la/iterative.hpp"

namespace fem2::fem1 {
namespace {

la::CsrMatrix laplacian_1d(std::size_t n) {
  la::TripletBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

TEST(Fem1, SolvesAndReportsIterationsMatchingNumerics) {
  const auto a = laplacian_1d(32);
  std::vector<double> rhs(32, 1.0);
  const auto result = fem1_solve(a, rhs, Fem1Config{}, Fem1Solver::Jacobi,
                                 1e-9);
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.converged);
  const auto reference =
      la::jacobi(a, rhs, {.tolerance = 1e-9, .max_iterations = 200'000});
  EXPECT_EQ(result.iterations, reference.report.iterations);
  EXPECT_GT(result.elapsed, 0u);
  EXPECT_GT(result.pe_utilization, 0.0);
  EXPECT_LE(result.pe_utilization, 1.0);
}

TEST(Fem1, GaussSeidelBeatsJacobi) {
  const auto a = laplacian_1d(48);
  std::vector<double> rhs(48, 1.0);
  const auto jac = fem1_solve(a, rhs, Fem1Config{}, Fem1Solver::Jacobi, 1e-8);
  const auto gs =
      fem1_solve(a, rhs, Fem1Config{}, Fem1Solver::GaussSeidel, 1e-8);
  ASSERT_TRUE(jac.converged && gs.converged);
  EXPECT_LT(gs.iterations, jac.iterations);
}

TEST(Fem1, StallsOnFailureWithoutRepartition) {
  const auto a = laplacian_1d(16);
  std::vector<double> rhs(16, 1.0);
  Fem1Config config;
  config.failed_processors = 1;
  const auto result = fem1_solve(a, rhs, config);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Fem1, ManualRepartitionCompletesWithPenalty) {
  const auto a = laplacian_1d(16);
  std::vector<double> rhs(16, 1.0);
  Fem1Config healthy;
  const auto base = fem1_solve(a, rhs, healthy);
  Fem1Config degraded;
  degraded.failed_processors = 4;
  degraded.manual_repartition = true;
  const auto result = fem1_solve(a, rhs, degraded);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.elapsed, base.elapsed);
}

TEST(Fem1, MoreProcessorsReduceElapsedTime) {
  const auto model = fem::make_cantilever_plate(
      {.nx = 16, .ny = 8, .material = {.youngs_modulus = 1000.0}}, 5.0);
  Fem1Config small;
  small.processors = 4;
  Fem1Config large;
  large.processors = 36;
  const auto slow = fem1_solve_model(model, "tip-shear", small,
                                     Fem1Solver::GaussSeidel, 1e-6);
  const auto fast = fem1_solve_model(model, "tip-shear", large,
                                     Fem1Solver::GaussSeidel, 1e-6);
  ASSERT_TRUE(slow.converged && fast.converged);
  EXPECT_EQ(slow.iterations, fast.iterations);  // same numerics
  EXPECT_GT(slow.elapsed, fast.elapsed);        // different hardware
}

TEST(Fem1, CommunicationCountsScaleWithIterations) {
  const auto a = laplacian_1d(64);
  std::vector<double> rhs(64, 1.0);
  Fem1Config config;
  config.processors = 16;
  const auto loose = fem1_solve(a, rhs, config, Fem1Solver::Jacobi, 1e-4);
  const auto tight = fem1_solve(a, rhs, config, Fem1Solver::Jacobi, 1e-10);
  ASSERT_TRUE(loose.converged && tight.converged);
  EXPECT_GT(tight.iterations, loose.iterations);
  const auto loose_comm = loose.link_words + loose.bus_words;
  const auto tight_comm = tight.link_words + tight.bus_words;
  EXPECT_GT(tight_comm, loose_comm);
  // Per-iteration traffic is identical (static communication pattern).
  EXPECT_EQ(loose_comm / loose.iterations, tight_comm / tight.iterations);
}

TEST(Fem1, BusTrafficAppearsWhenNeighborsCannotCover) {
  // Many processors on a 1-D chain: block neighbours are grid neighbours,
  // so traffic stays on links; a 2-D problem with striped rows needs the
  // bus for far-apart couplings.
  const auto model = fem::make_cantilever_plate(
      {.nx = 24, .ny = 12, .material = {.youngs_modulus = 1000.0}}, 5.0);
  Fem1Config config;
  config.processors = 25;
  const auto result = fem1_solve_model(model, "tip-shear", config,
                                       Fem1Solver::GaussSeidel, 1e-6);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.bus_words, 0u);
  EXPECT_GT(result.link_words, 0u);
}

TEST(Fem1, SummaryStringIsReadable) {
  const auto a = laplacian_1d(8);
  std::vector<double> rhs(8, 1.0);
  const auto ok = fem1_solve(a, rhs, Fem1Config{});
  EXPECT_NE(ok.summary().find("converged"), std::string::npos);
  Fem1Config dead;
  dead.failed_processors = 1;
  const auto stalled = fem1_solve(a, rhs, dead);
  EXPECT_NE(stalled.summary().find("STALLED"), std::string::npos);
}

}  // namespace
}  // namespace fem2::fem1
