// End-to-end smoke tests of the virtual-machine stack: coroutine tasks on
// the OS kernel on the simulated cluster machine.
#include <gtest/gtest.h>

#include "la/iterative.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "navm/task.hpp"
#include "navm/value.hpp"

namespace fem2 {
namespace {

struct Stack {
  hw::Machine machine;
  sysvm::Os os;
  navm::Runtime runtime;

  explicit Stack(hw::MachineConfig config = {},
                 sysvm::OsOptions options = {})
      : machine(config), os(machine, options), runtime(os) {}
};

TEST(NavmSmoke, RootTaskRunsAndReturns) {
  Stack s;
  s.runtime.define_task("root", [](navm::TaskContext& ctx) -> navm::Coro {
    ctx.charge(100);
    co_return navm::payload_int(42);
  });
  const auto id = s.runtime.launch("root");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  EXPECT_EQ(navm::as_int(s.runtime.result(id)), 42);
  EXPECT_GT(s.os.now(), 0u);
}

TEST(NavmSmoke, InitiateAndJoinChildren) {
  Stack s;
  s.runtime.define_task("child", [](navm::TaskContext& ctx) -> navm::Coro {
    ctx.charge(10);
    co_return navm::payload_int(
        static_cast<std::int64_t>(ctx.replication_index()));
  });
  s.runtime.define_task("parent", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto results = co_await navm::forall(
        ctx, "child", 8, [](std::uint32_t i) {
          return navm::payload_int(static_cast<std::int64_t>(i));
        });
    std::int64_t sum = 0;
    for (const auto& r : results) sum += navm::as_int(r);
    co_return navm::payload_int(sum);
  });
  const auto id = s.runtime.launch("parent");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  EXPECT_EQ(navm::as_int(s.runtime.result(id)), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_EQ(s.os.metrics().tasks_finished, 9u);
}

TEST(NavmSmoke, PauseResumeBroadcast) {
  Stack s;
  s.runtime.define_task("child", [](navm::TaskContext& ctx) -> navm::Coro {
    const sysvm::Payload datum = co_await ctx.pause();
    co_return navm::payload_int(navm::as_int(datum) * 2);
  });
  s.runtime.define_task("parent", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto children = ctx.initiate("child", 4);
    (void)co_await ctx.child_pauses(4);
    ctx.broadcast(children, navm::payload_int(21));
    const auto results = co_await ctx.join(4);
    std::int64_t sum = 0;
    for (const auto& r : results) sum += navm::as_int(r);
    co_return navm::payload_int(sum);
  });
  const auto id = s.runtime.launch("parent");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  EXPECT_EQ(navm::as_int(s.runtime.result(id)), 4 * 42);
}

TEST(NavmSmoke, WindowReadWriteAcrossClusters) {
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 2;
  sysvm::OsOptions options;
  options.placement = sysvm::Placement::RoundRobin;
  Stack s(config, options);

  s.runtime.define_task("reader", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto& win = ctx.params().as<navm::Window>();
    const std::vector<double> data = co_await ctx.read(win);
    double sum = 0.0;
    for (const double v : data) sum += v;
    co_return navm::payload_real(sum);
  });
  s.runtime.define_task("owner", [](navm::TaskContext& ctx) -> navm::Coro {
    const navm::Window win =
        ctx.create_vector({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
    // Give readers a window onto the middle of the vector.
    const navm::Window middle = win.range(2, 4);  // 3+4+5+6 = 18
    const auto results =
        co_await navm::forall(ctx, "reader", 3, [&](std::uint32_t) {
          return sysvm::Payload::of(middle, navm::Window::kDescriptorBytes);
        });
    double total = 0.0;
    for (const auto& r : results) total += navm::as_real(r);
    co_return navm::payload_real(total);
  });
  const auto id = s.runtime.launch("owner");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));
  EXPECT_DOUBLE_EQ(navm::as_real(s.runtime.result(id)), 3 * 18.0);
}

la::CsrMatrix laplacian_1d(std::size_t n) {
  la::TripletBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0);
    if (i > 0) builder.add(i, i - 1, -1.0);
    if (i + 1 < n) builder.add(i, i + 1, -1.0);
  }
  return builder.build();
}

TEST(NavmSmoke, DistributedConjugateGradient) {
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 4;
  Stack s(config);
  navm::register_parallel_ops(s.runtime);

  const std::size_t n = 64;
  navm::CgProblem problem;
  problem.a = laplacian_1d(n);
  problem.b.assign(n, 1.0);
  problem.workers = 4;
  problem.tolerance = 1e-10;

  s.runtime.define_task("main", [&](navm::TaskContext& ctx) -> navm::Coro {
    ctx.initiate(navm::kCgDriverTask, 1, [&](std::uint32_t) {
      return navm::make_cg_problem(problem);
    });
    auto results = co_await ctx.join(1);
    co_return std::move(results.at(0));
  });
  const auto id = s.runtime.launch("main");
  s.runtime.run();
  ASSERT_TRUE(s.os.task_finished(id));

  const auto& result = navm::as_cg_result(s.runtime.result(id));
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual, 1e-10);

  // Check against the sequential solver.
  const auto reference = la::conjugate_gradient(problem.a, problem.b);
  ASSERT_TRUE(reference.report.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(result.x[i], reference.x[i], 1e-6) << "at index " << i;

  // The solve must actually have exercised the machine: messages of several
  // types, multiple clusters.
  const auto& metrics = s.os.metrics();
  EXPECT_GT(metrics.messages_sent[static_cast<std::size_t>(
                sysvm::MessageType::RemoteCall)], 0u);
  EXPECT_GT(metrics.messages_sent[static_cast<std::size_t>(
                sysvm::MessageType::ResumeChild)], 0u);
  EXPECT_GT(s.machine.metrics().network.messages, 0u);
}

}  // namespace
}  // namespace fem2
