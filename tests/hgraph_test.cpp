#include <gtest/gtest.h>

#include "hgraph/grammar.hpp"
#include "hgraph/grammar_parser.hpp"
#include "hgraph/hgraph.hpp"
#include "hgraph/transform.hpp"

namespace fem2::hgraph {
namespace {

TEST(HGraph, NodesValuesAndArcs) {
  HGraph g;
  const auto root = g.add_node();
  const auto leaf = g.add_int(7);
  g.add_arc(root, "child", leaf);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_TRUE(g.is_empty(root));
  EXPECT_EQ(g.int_value(leaf), 7);
  EXPECT_EQ(g.follow(root, "child"), leaf);
  EXPECT_FALSE(g.follow(root, "missing").valid());
  EXPECT_EQ(g.real_value(leaf), 7.0);  // REAL accepts INT
  EXPECT_FALSE(g.string_value(leaf).has_value());
}

TEST(HGraph, SetArcReplacesTarget) {
  HGraph g;
  const auto root = g.add_node();
  const auto a = g.add_int(1);
  const auto b = g.add_int(2);
  g.set_arc(root, "x", a);
  g.set_arc(root, "x", b);
  EXPECT_EQ(g.arcs(root).size(), 1u);
  EXPECT_EQ(g.follow(root, "x"), b);
  EXPECT_TRUE(g.remove_arc(root, "x"));
  EXPECT_FALSE(g.remove_arc(root, "x"));
}

TEST(HGraph, FollowPathAndFollowAll) {
  HGraph g;
  const auto root = g.add_node();
  const auto mid = g.add_node();
  const auto leaf = g.add_string("deep");
  g.add_arc(root, "a", mid);
  g.add_arc(mid, "b", leaf);
  g.add_arc(root, "multi", mid);
  g.add_arc(root, "multi", leaf);
  EXPECT_EQ(g.follow_path(root, {"a", "b"}), leaf);
  EXPECT_FALSE(g.follow_path(root, {"a", "nope"}).valid());
  EXPECT_EQ(g.follow_all(root, "multi").size(), 2u);
  EXPECT_EQ(g.arc_count(root, "multi"), 2u);
}

TEST(HGraph, ReachableHandlesCycles) {
  HGraph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  g.add_arc(a, "next", b);
  g.add_arc(b, "next", a);  // cycle
  const auto order = g.reachable(a);
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], a);
}

TEST(HGraph, StructuralEquality) {
  HGraph g1, g2;
  const auto r1 = g1.add_node();
  g1.add_arc(r1, "x", g1.add_int(5));
  const auto r2 = g2.add_node();
  g2.add_arc(r2, "x", g2.add_int(5));
  EXPECT_TRUE(HGraph::structurally_equal(g1, r1, g2, r2));

  // Different atom breaks equality.
  HGraph g3;
  const auto r3 = g3.add_node();
  g3.add_arc(r3, "x", g3.add_int(6));
  EXPECT_FALSE(HGraph::structurally_equal(g1, r1, g3, r3));

  // Different sharing structure breaks equality: diamond vs twin leaves.
  HGraph g4, g5;
  const auto r4 = g4.add_node();
  const auto shared = g4.add_int(1);
  g4.add_arc(r4, "a", shared);
  g4.add_arc(r4, "b", shared);
  const auto r5 = g5.add_node();
  g5.add_arc(r5, "a", g5.add_int(1));
  g5.add_arc(r5, "b", g5.add_int(1));
  EXPECT_FALSE(HGraph::structurally_equal(g4, r4, g5, r5));
}

TEST(HGraph, CyclicStructuralEquality) {
  HGraph g1, g2;
  const auto a1 = g1.add_node();
  const auto b1 = g1.add_node();
  g1.add_arc(a1, "n", b1);
  g1.add_arc(b1, "n", a1);
  const auto a2 = g2.add_node();
  const auto b2 = g2.add_node();
  g2.add_arc(a2, "n", b2);
  g2.add_arc(b2, "n", a2);
  EXPECT_TRUE(HGraph::structurally_equal(g1, a1, g2, a2));
  // Self-loop is NOT equal to a 2-cycle.
  HGraph g3;
  const auto a3 = g3.add_node();
  g3.add_arc(a3, "n", a3);
  EXPECT_FALSE(HGraph::structurally_equal(g1, a1, g3, a3));
}

TEST(HGraph, DumpAndDotAreDeterministic) {
  HGraph g;
  const auto root = g.add_node();
  g.add_arc(root, "v", g.add_real(1.5));
  EXPECT_EQ(g.to_string(root), "n0 = nil .v->n1\nn1 = 1.5\n");
  const auto dot = g.to_dot(root, "t");
  EXPECT_NE(dot.find("digraph t"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

// --- grammar ---------------------------------------------------------------

TEST(Grammar, AtomKindsMatch) {
  HGraph g;
  EXPECT_TRUE(atom_matches(g, g.add_int(1), AtomKind::Int));
  EXPECT_TRUE(atom_matches(g, g.add_int(1), AtomKind::Real));
  EXPECT_FALSE(atom_matches(g, g.add_real(1.0), AtomKind::Int));
  EXPECT_TRUE(atom_matches(g, g.add_string("s"), AtomKind::String));
  EXPECT_TRUE(atom_matches(g, g.add_node(), AtomKind::Nil));
  EXPECT_TRUE(atom_matches(g, g.add_node(), AtomKind::Any));
}

Grammar point_grammar() {
  return parse_grammar("point ::= { x: REAL, y: REAL }");
}

TEST(Grammar, CompositeConformance) {
  HGraph g;
  const auto p = g.add_node();
  g.add_arc(p, "x", g.add_real(1.0));
  g.add_arc(p, "y", g.add_real(2.0));
  EXPECT_TRUE(point_grammar().conforms(g, p, "point"));
}

TEST(Grammar, MissingArcFails) {
  HGraph g;
  const auto p = g.add_node();
  g.add_arc(p, "x", g.add_real(1.0));
  const auto r = point_grammar().conforms(g, p, "point");
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("'y'"), std::string::npos);
}

TEST(Grammar, ExtraArcFailsUnlessOpen) {
  HGraph g;
  const auto p = g.add_node();
  g.add_arc(p, "x", g.add_real(1.0));
  g.add_arc(p, "y", g.add_real(2.0));
  g.add_arc(p, "z", g.add_real(3.0));
  EXPECT_FALSE(point_grammar().conforms(g, p, "point"));
  const auto open =
      parse_grammar("point ::= { x: REAL, y: REAL, ... }");
  EXPECT_TRUE(open.conforms(g, p, "point"));
}

TEST(Grammar, AlternativesAndAlias) {
  const auto g = parse_grammar(R"(
value ::= INT | REAL | wrapped
wrapped ::= { v: value }
alias ::= value
)");
  HGraph h;
  EXPECT_TRUE(g.conforms(h, h.add_int(1), "value"));
  EXPECT_TRUE(g.conforms(h, h.add_real(1.5), "alias"));
  const auto w = h.add_node();
  h.add_arc(w, "v", h.add_int(3));
  EXPECT_TRUE(g.conforms(h, w, "value"));
  EXPECT_FALSE(g.conforms(h, h.add_string("no"), "value"));
}

TEST(Grammar, RecursiveListAndCycleCoinduction) {
  const auto g = parse_grammar("list ::= NIL | { @INT, next?: list }");
  HGraph h;
  // Proper list: 1 -> 2 -> nil-less tail.
  const auto n2 = h.add_int(2);
  const auto n1 = h.add_int(1);
  h.add_arc(n1, "next", n2);
  EXPECT_TRUE(g.conforms(h, n1, "list"));
  // Circular list: conforms coinductively.
  const auto c1 = h.add_int(1);
  const auto c2 = h.add_int(2);
  h.add_arc(c1, "next", c2);
  h.add_arc(c2, "next", c1);
  EXPECT_TRUE(g.conforms(h, c1, "list"));
}

TEST(Grammar, IndexedFamilyMustBeContiguous) {
  const auto g = parse_grammar("vec ::= { item[*]: INT }");
  HGraph h;
  const auto good = h.add_node();
  h.add_arc(good, "item[0]", h.add_int(1));
  h.add_arc(good, "item[1]", h.add_int(2));
  EXPECT_TRUE(g.conforms(h, good, "vec"));

  const auto empty = h.add_node();
  EXPECT_TRUE(g.conforms(h, empty, "vec"));

  const auto gapped = h.add_node();
  h.add_arc(gapped, "item[0]", h.add_int(1));
  h.add_arc(gapped, "item[2]", h.add_int(3));
  EXPECT_FALSE(g.conforms(h, gapped, "vec"));

  const auto dup = h.add_node();
  h.add_arc(dup, "item[0]", h.add_int(1));
  h.add_arc(dup, "item[0]", h.add_int(1));
  EXPECT_FALSE(g.conforms(h, dup, "vec"));
}

TEST(Grammar, StarMultiplicity) {
  const auto g = parse_grammar("bag ::= { item*: INT }");
  HGraph h;
  const auto none = h.add_node();
  EXPECT_TRUE(g.conforms(h, none, "bag"));
  const auto three = h.add_node();
  for (int i = 0; i < 3; ++i) h.add_arc(three, "item", h.add_int(i));
  EXPECT_TRUE(g.conforms(h, three, "bag"));
  const auto bad = h.add_node();
  h.add_arc(bad, "item", h.add_string("not an int"));
  EXPECT_FALSE(g.conforms(h, bad, "bag"));
}

TEST(Grammar, OwnAtomConstraint) {
  const auto g = parse_grammar("tagged ::= { @STRING, next?: tagged }");
  HGraph h;
  const auto good = h.add_string("tag");
  EXPECT_TRUE(g.conforms(h, good, "tagged"));
  const auto bad = h.add_int(3);
  EXPECT_FALSE(g.conforms(h, bad, "tagged"));
}

TEST(Grammar, ErrorPathsAreInformative) {
  const auto g = parse_grammar(R"(
outer ::= { inner: inner }
inner ::= { v: INT }
)");
  HGraph h;
  const auto o = h.add_node();
  const auto i = h.add_node();
  h.add_arc(o, "inner", i);
  h.add_arc(i, "v", h.add_string("wrong"));
  const auto r = g.conforms(h, o, "outer");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error.find(".inner.v"), std::string::npos);
}

TEST(GrammarParser, RejectsMalformedText) {
  EXPECT_THROW(parse_grammar("nonsense"), GrammarParseError);
  EXPECT_THROW(parse_grammar("a ::= { x INT }"), GrammarParseError);
  EXPECT_THROW(parse_grammar("a ::= { x: undefined_nt }"),
               GrammarParseError);
  EXPECT_THROW(parse_grammar("a ::= @ b"), GrammarParseError);
}

/// Extract "what()" for a parse failure (fails the test if none thrown).
std::string parse_error_of(std::string_view text) {
  try {
    parse_grammar(text);
  } catch (const GrammarParseError& e) {
    return e.what();
  }
  ADD_FAILURE() << "no parse error for: " << text;
  return "";
}

TEST(GrammarParser, BadMultiplicityTokenReportsLineAndColumn) {
  // '+' is not a multiplicity marker; the lexer rejects it where it stands.
  const std::string error = parse_error_of("a ::= { x+: INT }");
  EXPECT_NE(error.find("unexpected '+'"), std::string::npos) << error;
  EXPECT_NE(error.find("line 1, col 10"), std::string::npos) << error;
}

TEST(GrammarParser, DuplicateArcLabelRejectedWithBothLocations) {
  const std::string error =
      parse_error_of("a ::= { x: INT,\n        x: REAL }");
  EXPECT_NE(error.find("duplicate arc label 'x'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("line 2, col 9"), std::string::npos) << error;
  EXPECT_NE(error.find("first declared at line 1, col 9"),
            std::string::npos)
      << error;
}

TEST(GrammarParser, DuplicateLabelAcrossMultiplicitiesRejected) {
  EXPECT_THROW(parse_grammar("a ::= { n: INT, n[*]: INT }"),
               GrammarParseError);
  EXPECT_THROW(parse_grammar("a ::= { n?: INT, n*: INT }"),
               GrammarParseError);
  // The same label in *different* alternatives stays legal.
  EXPECT_NO_THROW(parse_grammar("a ::= { n: INT } | { n: REAL }"));
}

TEST(GrammarParser, UnterminatedCompositeReportsEndOfInput) {
  const std::string error = parse_error_of("a ::= { x: INT");
  EXPECT_NE(error.find("expected ','"), std::string::npos) << error;
  EXPECT_NE(error.find("line 1, col 15"), std::string::npos) << error;
}

TEST(GrammarParser, UnterminatedAlternativeReportsLocation) {
  const std::string error = parse_error_of("a ::= INT |");
  EXPECT_NE(error.find("expected atom kind or nonterminal"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("line 1, col 12"), std::string::npos) << error;
}

class GrammarParserRobustness
    : public ::testing::TestWithParam<const char*> {};

TEST_P(GrammarParserRobustness, MalformedInputsThrowCleanly) {
  EXPECT_THROW(parse_grammar(GetParam()), GrammarParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadGrammars, GrammarParserRobustness,
    ::testing::Values("a ::=", "a ::= {", "a ::= { x: }", "::= INT",
                      "a ::= INT |", "a ::= { x?: }", "a ::= { @foo }",
                      "a b ::= INT", "a ::= { x: INT y: INT }",
                      "a ::= $bad", "a ::= { ..., }"));

TEST(GrammarParser, CommentsAndMultiline) {
  const auto g = parse_grammar(R"(
# leading comment
pair ::= { a: INT,
           b: INT }   # trailing comment
)");
  HGraph h;
  const auto p = h.add_node();
  h.add_arc(p, "a", h.add_int(1));
  h.add_arc(p, "b", h.add_int(2));
  EXPECT_TRUE(g.conforms(h, p, "pair"));
}

// --- transforms --------------------------------------------------------------

TEST(Transforms, CheckedApplicationAndInvocation) {
  auto grammar = parse_grammar(R"(
counter ::= { @INT }
)");
  TransformRegistry registry(std::move(grammar));
  registry.register_transform(
      "increment", {"counter", "counter", {}},
      [](Invoker&, HGraph& g, NodeId n) {
        g.set_value(n, Atom{*g.int_value(n) + 1});
        return n;
      });
  registry.register_transform(
      "increment-twice", {"counter", "counter", {}},
      [](Invoker& invoker, HGraph&, NodeId n) {
        invoker.call("increment", n);
        return invoker.call("increment", n);
      });

  HGraph g;
  const auto n = g.add_int(5);
  const auto out = registry.apply("increment-twice", g, n);
  EXPECT_EQ(g.int_value(out), 7);
  EXPECT_EQ(registry.applications(), 3u);
}

TEST(Transforms, InputViolationRejected) {
  TransformRegistry registry(parse_grammar("counter ::= { @INT }"));
  registry.register_transform("noop", {"counter", "counter", {}},
                              [](Invoker&, HGraph&, NodeId n) { return n; });
  HGraph g;
  EXPECT_THROW(registry.apply("noop", g, g.add_string("nope")),
               TransformError);
}

TEST(Transforms, OutputViolationRejected) {
  TransformRegistry registry(parse_grammar("counter ::= { @INT }"));
  registry.register_transform(
      "corrupt", {"counter", "counter", {}},
      [](Invoker&, HGraph& g, NodeId) { return g.add_string("bad"); });
  HGraph g;
  EXPECT_THROW(registry.apply("corrupt", g, g.add_int(1)), TransformError);
}

TEST(Transforms, UnknownTransformRejected) {
  TransformRegistry registry(parse_grammar("t ::= ANY"));
  HGraph g;
  EXPECT_THROW(registry.apply("missing", g, g.add_node()), TransformError);
}

}  // namespace
}  // namespace fem2::hgraph
