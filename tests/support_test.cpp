#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace fem2::support {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    FEM2_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBelowIsUnbiasedEnough) {
  Rng rng(11);
  std::array<int, 7> counts{};
  const int n = 70'000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(7)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, n / 7.0 * 0.1);
  }
}

TEST(Rng, UniformIntCoversBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.split();
  // The child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.5, -2.0, 4.25, 0.0, 3.5, 3.5};
  RunningStats stats;
  for (const double x : xs) stats.add(x);
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_EQ(stats.min(), -2.0);
  EXPECT_EQ(stats.max(), 4.25);
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(21);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  // Out-of-range samples clamp.
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.total(), 102u);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split_ws("  a\tb  c \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(iequals("HeLLo", "hello"));
  EXPECT_FALSE(iequals("hello", "hell"));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(7), "7");
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
}

TEST(Table, RendersAlignedGrid) {
  Table t("title");
  t.set_header({"a", "long-header"});
  t.row().cell("x").cell(std::uint64_t{42});
  t.row().cell("longer-cell").cell(3.14159, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| long-header |"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

}  // namespace
}  // namespace fem2::support
