// Vibration analysis of a cantilever — the dynamics side of the FEM-2
// engineer's application package: natural frequencies against the
// Euler-Bernoulli closed form, then a transient pluck integrated with
// Newmark-β, ringing at the first mode.
#include <cmath>
#include <iostream>
#include <numbers>

#include "appvm/command.hpp"
#include "fem/dynamics.hpp"
#include "fem/mesh.hpp"

using namespace fem2;

int main() {
  fem::Material aluminium;
  aluminium.youngs_modulus = 70e9;
  aluminium.density = 2700.0;
  aluminium.area = 4e-4;
  aluminium.moment_of_inertia = 1.333e-8;

  const double length = 1.2;
  const auto model = fem::make_cantilever_beam(
      {.segments = 24, .length = length, .material = aluminium}, 40.0);

  // --- natural frequencies ---------------------------------------------------
  const auto modal = fem::modal_analysis(model, 3);
  const double beta1 = 1.8751040687;
  const double exact =
      beta1 * beta1 / (2.0 * std::numbers::pi) *
      std::sqrt(aluminium.youngs_modulus * aluminium.moment_of_inertia /
                (aluminium.density * aluminium.area * std::pow(length, 4)));
  std::cout << "cantilever natural frequencies ("
            << (modal.converged ? "converged" : "NOT converged") << "):\n";
  for (std::size_t i = 0; i < modal.modes.size(); ++i)
    std::cout << "  f" << i + 1 << " = " << modal.modes[i].frequency
              << " Hz\n";
  std::cout << "Euler-Bernoulli closed form f1 = " << exact << " Hz ("
            << 100.0 * std::abs(modal.modes[0].frequency - exact) / exact
            << "% off with lumped mass)\n\n";

  // --- transient pluck -------------------------------------------------------
  const auto system = fem::assemble(model);
  const auto tip_load = system.load_vector(model.load_sets.at("tip"));
  const double period = 1.0 / modal.modes[0].frequency;

  fem::NewmarkOptions options;
  options.dt = period / 100.0;
  options.steps = 400;
  const auto transient = fem::newmark_transient(
      model,
      [&](double t) {
        return t < period / 8.0
                   ? tip_load
                   : std::vector<double>(system.dofs.free_dofs, 0.0);
      },
      options);

  const auto tip_dof = static_cast<std::size_t>(
      system.dofs.full_to_reduced[system.dofs.full_index(24, 1)]);
  std::cout << "tip response to a " << period / 8.0
            << " s pluck (one sample per quarter period):\n";
  for (std::size_t i = 0; i < transient.samples.size(); i += 25) {
    const auto& s = transient.samples[i];
    std::cout << "  t = " << s.time << " s  u_tip = "
              << s.displacement[tip_dof] << " m\n";
  }
  std::cout << "peak |u| = " << transient.peak_abs_displacement << " m\n";

  // --- the same analysis through the command language ------------------------
  std::cout << "\n-- through the application user's VM --\n";
  appvm::Database db;
  appvm::Session session(db);
  for (const char* line :
       {"mesh beam segments=24 length=1.2 load=40", "modes 3"}) {
    const auto response = session.execute(line);
    std::cout << "  " << response.text << "\n";
    if (!response.ok) return 1;
  }
  return modal.converged ? 0 : 1;
}
