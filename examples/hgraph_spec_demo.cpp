// H-graph semantics demo: the FEM-2 formal-specification machinery.
//
// Builds a structural model purely through checked H-graph transforms (the
// formal model of the application layer's operations), validates it against
// the layer-1 grammar, then reflects a *live* C++ model into an H-graph and
// checks that the implementation state is in the language of the same
// grammar — the design method's "formal definitions used as the basis for
// simulations" made executable.
#include <iostream>

#include "fem/mesh.hpp"
#include "spec/layers.hpp"
#include "spec/reflect.hpp"
#include "spec/transforms.hpp"

using namespace fem2;

int main() {
  // --- 1. operate on the formal model through transforms --------------------
  auto registry = spec::make_appvm_transforms();
  hgraph::HGraph g;

  const auto name_arg = g.add_node();
  g.add_arc(name_arg, "name", g.add_string("demo-panel"));
  const auto model = registry.apply("define-structure-model", g, name_arg);

  // generate-grid invokes add-node per point: a transform call hierarchy.
  const auto grid_arg = g.add_node();
  g.add_arc(grid_arg, "model", model);
  g.add_arc(grid_arg, "nx", g.add_int(3));
  g.add_arc(grid_arg, "ny", g.add_int(2));
  g.add_arc(grid_arg, "width", g.add_real(3.0));
  g.add_arc(grid_arg, "height", g.add_real(1.0));
  registry.apply("generate-grid", g, grid_arg);

  const auto load_arg = g.add_node();
  g.add_arc(load_arg, "model", model);
  g.add_arc(load_arg, "set", g.add_string("tip"));
  g.add_arc(load_arg, "node", g.add_int(11));
  g.add_arc(load_arg, "dof", g.add_int(1));
  g.add_arc(load_arg, "value", g.add_real(-500.0));
  registry.apply("add-load", g, load_arg);

  const auto count = registry.apply("count-nodes", g, model);
  std::cout << "formal model holds " << *g.int_value(count)
            << " grid points after " << registry.applications()
            << " checked transform applications\n";

  const auto conformance =
      registry.grammar().conforms(g, model, "structure");
  std::cout << "grammar check of the transform-built model: "
            << (conformance ? "conforms" : conformance.error) << "\n\n";

  // --- 2. check the live implementation against the same grammar -----------
  fem::PlateMeshOptions mesh;
  mesh.nx = 4;
  mesh.ny = 2;
  const auto live_model = fem::make_cantilever_plate(mesh, 100.0);

  hgraph::HGraph reflected;
  const auto root = spec::reflect_model(reflected, live_model);
  const auto grammar = spec::appvm_grammar();
  const auto live_check = grammar.conforms(reflected, root, "structure");
  std::cout << "live make_cantilever_plate() state ("
            << reflected.node_count() << " H-graph nodes): "
            << (live_check ? "conforms to the layer-1 grammar"
                           : live_check.error)
            << "\n\n";

  // --- 3. show a fragment of the formal object -------------------------------
  const auto first_point = reflected.follow(root, "node[0]");
  std::cout << "H-graph of node[0]:\n"
            << reflected.to_string(first_point);

  return conformance && live_check ? 0 : 1;
}
