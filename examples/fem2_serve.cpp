// fem2_serve: a multi-session workload driver that hammers one shared
// fem2-db database from K concurrent sessions — "provide multi-user
// access" pushed to the point where optimistic concurrency has to earn
// its keep.  Each worker runs a real interactive Session (the command
// language, not raw engine calls) and mixes:
//
//   * compare-and-swap stores (`store <name> if-rev=N`) with retry on
//     conflict — the two-engineers-race-on-one-bridge scenario,
//   * transactional batches (begin / store a, b / commit),
//   * retrieves, history reads and directory listings.
//
// At the end the driver checks a global invariant: every name's final
// revision must equal the number of successful stores to it (no lost or
// phantom writes), and with --smoke it also reopens the database from
// disk to prove recovery sees the same state.
//
// usage: fem2_serve [--sessions=K] [--ops=N] [--dir=PATH] [--seed=S]
//                   [--smoke]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "appvm/command.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using fem2::appvm::Database;
using fem2::appvm::Session;

namespace {

struct WorkerResult {
  std::uint64_t stores = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t retrieves = 0;
  std::uint64_t txns = 0;
  std::uint64_t errors = 0;
};

const std::vector<std::string> kNames = {"bridge", "jib-boom", "panel",
                                         "deck-plate", "mast"};

void worker(Database& db, unsigned index, std::size_t ops,
            std::uint64_t seed, WorkerResult& out,
            std::vector<std::atomic<std::uint64_t>>& stores_per_name) {
  Session session(db, "worker-" + std::to_string(index));
  // Conflict/transient-I/O retries are the session's job now: a bounded
  // policy with per-worker jitter seed de-synchronizes the racers.
  fem2::db::RetryPolicy policy;
  policy.max_attempts = 64;
  policy.initial_backoff = std::chrono::microseconds(50);
  policy.max_backoff = std::chrono::microseconds(2000);
  policy.seed = seed * 7919 + index;
  session.set_retry_policy(policy);
  fem2::support::Rng rng(seed);
  // A small private model to store; bays vary so payloads differ.
  session.execute("mesh truss bays=" + std::to_string(2 + index % 4) +
                  " load=" + std::to_string(100 + index));

  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t pick = rng.next_below(kNames.size());
    const std::string& name = kNames[pick];
    const double dice = rng.uniform();

    if (dice < 0.60) {
      // Optimistic store: `if-rev=head` re-reads the revision on every
      // attempt, so the session-level retry IS the CAS loop.
      const auto r = session.execute_with_retry("store " + name +
                                                " if-rev=head");
      if (r.ok) {
        out.stores += 1;
        stores_per_name[pick] += 1;
      } else {
        out.errors += 1;
      }
    } else if (dice < 0.75) {
      // Transactional batch: two stores, one atomic commit point.
      const std::size_t other = rng.next_below(kNames.size());
      bool ok = session.execute("begin").ok;
      ok = ok && session.execute("store " + name).ok;
      ok = ok && session.execute("store " + kNames[other]).ok;
      ok = ok && session.execute("commit").ok;
      if (ok) {
        out.txns += 1;
        out.stores += 2;
        stores_per_name[pick] += 1;
        stores_per_name[other] += 1;
      } else {
        out.errors += 1;
      }
    } else if (dice < 0.90) {
      if (db.contains(name)) {
        if (session.execute("retrieve " + name).ok)
          out.retrieves += 1;
        else
          out.errors += 1;
        // Leave the workspace with a model we can store next op.
      }
    } else {
      session.execute(rng.chance(0.5) ? "history " + name : "list");
      out.retrieves += 1;
    }
  }
}

struct RunReport {
  WorkerResult totals;
  double elapsed_ms = 0.0;
  bool consistent = true;
};

RunReport run_sessions(Database& db, std::size_t sessions, std::size_t ops,
                       std::uint64_t seed) {
  std::vector<WorkerResult> results(sessions);
  std::vector<std::atomic<std::uint64_t>> stores_per_name(kNames.size());
  // The database may be pre-populated (a rerun over a persistent
  // directory): the invariant is on revisions gained THIS run.
  std::vector<std::uint64_t> initial_revision(kNames.size());
  for (std::size_t i = 0; i < kNames.size(); ++i)
    initial_revision[i] = db.revision(kNames[i]);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      threads.emplace_back(worker, std::ref(db), static_cast<unsigned>(i),
                           ops, seed + i, std::ref(results[i]),
                           std::ref(stores_per_name));
    }
    for (auto& t : threads) t.join();
  }
  const auto stop = std::chrono::steady_clock::now();

  RunReport report;
  report.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  for (const auto& r : results) {
    report.totals.stores += r.stores;
    report.totals.retrieves += r.retrieves;
    report.totals.txns += r.txns;
    report.totals.errors += r.errors;
  }
  // Conflicts are resolved inside the sessions' retry loops now; the
  // engine still counts every rejection it handed out.
  report.totals.conflicts = db.engine().stats().conflicts;
  // No lost writes, no phantom writes: every successful store bumped its
  // name's revision by exactly one.
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    const std::uint64_t expected = initial_revision[i] + stores_per_name[i];
    if (db.revision(kNames[i]) != expected) {
      std::cerr << "INCONSISTENT: '" << kNames[i] << "' at revision "
                << db.revision(kNames[i]) << ", expected " << expected
                << " after " << stores_per_name[i] << " successful stores\n";
      report.consistent = false;
    }
  }
  return report;
}

std::uint64_t arg_value(const std::string& arg, std::uint64_t fallback) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return fallback;
  return std::strtoull(arg.c_str() + eq + 1, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 8;
  std::size_t ops = 200;
  std::uint64_t seed = 42;
  std::string dir;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--sessions=")) {
      sessions = arg_value(arg, sessions);
    } else if (arg.starts_with("--ops=")) {
      ops = arg_value(arg, ops);
    } else if (arg.starts_with("--seed=")) {
      seed = arg_value(arg, seed);
    } else if (arg.starts_with("--dir=")) {
      dir = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
      sessions = 4;
      ops = 30;
    } else {
      std::cerr << "usage: fem2_serve [--sessions=K] [--ops=N] [--dir=PATH]"
                   " [--seed=S] [--smoke]\n";
      return 2;
    }
  }

  // Smoke mode gets a throwaway persistent directory so the WAL, the
  // checkpointer and recovery all run (sanitized in CI).
  std::filesystem::path smoke_dir;
  if (smoke && dir.empty()) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "fem2_serve_XXXXXX")
            .string();
    if (!::mkdtemp(tmpl.data())) {
      std::cerr << "cannot create smoke directory\n";
      return 1;
    }
    smoke_dir = tmpl;
    dir = tmpl;
  }

  bool ok = true;
  {
    Database db = dir.empty() ? Database() : Database(dir);
    std::cout << "fem2_serve: " << sessions << " sessions x " << ops
              << " ops on " << (dir.empty() ? "an in-memory" : "a persistent")
              << " database\n";
    const RunReport report = run_sessions(db, sessions, ops, seed);

    fem2::support::Table table("multi-session workload");
    table.set_header({"sessions", "ops", "stores", "txns", "conflicts",
                      "retrieves", "errors", "ms", "commits/s"});
    const auto& t = report.totals;
    const double commits_per_s =
        report.elapsed_ms > 0.0
            ? 1000.0 * static_cast<double>(t.stores + t.txns) /
                  report.elapsed_ms
            : 0.0;
    table.row()
        .cell(static_cast<std::uint64_t>(sessions))
        .cell(static_cast<std::uint64_t>(ops))
        .cell(t.stores)
        .cell(t.txns)
        .cell(t.conflicts)
        .cell(t.retrieves)
        .cell(t.errors)
        .cell(report.elapsed_ms, 1)
        .cell(commits_per_s, 0);
    table.print(std::cout);
    ok = report.consistent && t.errors == 0;

    if (!dir.empty()) {
      // Recovery check: a fresh engine over the same directory must see
      // exactly the surviving state.
      const auto before = db.list();
      Database reopened(dir);
      bool recovery_ok = true;
      for (const auto& entry : before) {
        if (reopened.revision(entry.name) != entry.revision) {
          std::cerr << "RECOVERY MISMATCH on '" << entry.name << "'\n";
          recovery_ok = false;
        }
      }
      std::cout << "recovery check: " << before.size()
                << " entries reopened from disk"
                << (recovery_ok ? "" : " — MISMATCH") << "\n";
      ok = ok && recovery_ok;
    }
  }

  if (!smoke_dir.empty()) std::filesystem::remove_all(smoke_dir);
  std::cout << (ok ? "fem2_serve: ok\n" : "fem2_serve: FAILED\n");
  return ok ? 0 : 1;
}
