// fem2_serve: a multi-tenant workload driver for the serve subsystem —
// "provide multi-user access" pushed through a real server front-end.
// K client threads each open a session on one serve::Server (sessions
// spread across a few tenants) and submit interactive command lines; the
// server multiplexes them onto its fixed worker pool, admission control
// runs ahead of the queue, and every committed write rides the engine's
// group-commit window (one shared fsync per batch).  The client mix:
//
//   * compare-and-swap stores (`store <name> if-rev=N`) retried through
//     call_with_retry — conflict, quota and overload rejections all back
//     off on the client's thread and re-enter admission,
//   * transactional batches (begin / store a, b / commit),
//   * retrieves, history reads and snapshot-path queries that bypass the
//     queue entirely.
//
// At the end the driver checks a global invariant: every name's final
// revision must equal the number of successful stores to it (no lost or
// phantom writes), and with --smoke it also reopens the database from
// disk to prove recovery sees exactly the acked state.
//
// usage: fem2_serve [--sessions=K] [--ops=N] [--dir=PATH] [--seed=S]
//                   [--smoke]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "appvm/database.hpp"
#include "serve/server.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using fem2::appvm::Database;
using fem2::serve::Server;
using fem2::serve::ServerOptions;

namespace {

struct ClientResult {
  std::uint64_t stores = 0;
  std::uint64_t retrieves = 0;
  std::uint64_t txns = 0;
  std::uint64_t errors = 0;
};

const std::vector<std::string> kNames = {"bridge", "jib-boom", "panel",
                                         "deck-plate", "mast"};
const std::vector<std::string> kTenants = {"acme", "globex", "initech"};

void client(Server& server, unsigned index, std::size_t ops,
            std::uint64_t seed, ClientResult& out,
            std::vector<std::atomic<std::uint64_t>>& stores_per_name) {
  const std::string& tenant = kTenants[index % kTenants.size()];
  const auto opened =
      server.open_session(tenant, "engineer-" + std::to_string(index));
  if (opened.session == 0) {
    out.errors += 1;
    return;
  }
  const std::uint64_t id = opened.session;
  fem2::support::Rng rng(seed);
  // A small private model to store; bays vary so payloads differ.
  server.call(id, "mesh truss bays=" + std::to_string(2 + index % 4) +
                      " load=" + std::to_string(100 + index));

  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t pick = rng.next_below(kNames.size());
    const std::string& name = kNames[pick];
    const double dice = rng.uniform();

    if (dice < 0.60) {
      // Optimistic store: `if-rev=head` re-reads the revision on every
      // attempt, so the server-side retry loop IS the CAS loop.
      const auto r = server.call_with_retry(id, "store " + name +
                                                    " if-rev=head");
      if (r.ok) {
        out.stores += 1;
        stores_per_name[pick] += 1;
      } else {
        out.errors += 1;
      }
    } else if (dice < 0.75) {
      // Transactional batch: two stores, one atomic commit point.  The
      // session FIFO keeps the four lines in order; only the commit can
      // conflict.
      const std::size_t other = rng.next_below(kNames.size());
      bool ok = server.call(id, "begin").ok;
      ok = ok && server.call(id, "store " + name).ok;
      ok = ok && server.call(id, "store " + kNames[other]).ok;
      ok = ok && server.call(id, "commit").ok;
      if (ok) {
        out.txns += 1;
        out.stores += 2;
        stores_per_name[pick] += 1;
        stores_per_name[other] += 1;
      } else {
        out.errors += 1;
        server.call(id, "abort");  // drop a half-open transaction, if any
      }
    } else if (dice < 0.90) {
      const auto r = server.call(id, "retrieve " + name);
      // Absent names are expected early in the run; any hit refreshes the
      // workspace with a model we can store next op.
      if (r.ok) out.retrieves += 1;
    } else if (dice < 0.95) {
      server.call(id, "history " + name);
      out.retrieves += 1;
    } else {
      // Snapshot read path: straight from the engine's indexes on this
      // thread — never queued, never waiting on a batch fsync.
      fem2::db::QueryFilter filter;
      filter.kind = "model";
      server.query(filter);
      out.retrieves += 1;
    }
  }
  server.close_session(id);
}

struct RunReport {
  ClientResult totals;
  fem2::serve::ServerStats server;
  fem2::db::EngineStats engine;
  double elapsed_ms = 0.0;
  bool consistent = true;
};

RunReport run_clients(std::shared_ptr<fem2::db::Engine> engine,
                      std::size_t sessions, std::size_t ops,
                      std::uint64_t seed) {
  Database db(engine);
  std::vector<ClientResult> results(sessions);
  std::vector<std::atomic<std::uint64_t>> stores_per_name(kNames.size());
  // The database may be pre-populated (a rerun over a persistent
  // directory): the invariant is on revisions gained THIS run.
  std::vector<std::uint64_t> initial_revision(kNames.size());
  for (std::size_t i = 0; i < kNames.size(); ++i)
    initial_revision[i] = db.revision(kNames[i]);

  RunReport report;
  const auto start = std::chrono::steady_clock::now();
  {
    ServerOptions options;
    // A workload driver wants interleaving, not peak throughput: several
    // workers even on a small host so CAS stores actually race.
    options.workers =
        static_cast<unsigned>(std::min<std::size_t>(sessions, 4));
    options.retry_policy.max_attempts = 64;
    options.retry_policy.initial_backoff = std::chrono::microseconds(50);
    options.retry_policy.max_backoff = std::chrono::microseconds(2000);
    options.retry_policy.seed = seed * 7919;
    Server server(engine, options);
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      threads.emplace_back(client, std::ref(server),
                           static_cast<unsigned>(i), ops, seed + i,
                           std::ref(results[i]), std::ref(stores_per_name));
    }
    for (auto& t : threads) t.join();
    report.server = server.stats();
  }
  const auto stop = std::chrono::steady_clock::now();

  report.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  for (const auto& r : results) {
    report.totals.stores += r.stores;
    report.totals.retrieves += r.retrieves;
    report.totals.txns += r.txns;
    report.totals.errors += r.errors;
  }
  report.engine = engine->stats();
  // No lost writes, no phantom writes: every successful store bumped its
  // name's revision by exactly one.
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    const std::uint64_t expected = initial_revision[i] + stores_per_name[i];
    if (db.revision(kNames[i]) != expected) {
      std::cerr << "INCONSISTENT: '" << kNames[i] << "' at revision "
                << db.revision(kNames[i]) << ", expected " << expected
                << " after " << stores_per_name[i] << " successful stores\n";
      report.consistent = false;
    }
  }
  return report;
}

std::uint64_t arg_value(const std::string& arg, std::uint64_t fallback) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return fallback;
  return std::strtoull(arg.c_str() + eq + 1, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 8;
  std::size_t ops = 200;
  std::uint64_t seed = 42;
  std::string dir;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--sessions=")) {
      sessions = arg_value(arg, sessions);
    } else if (arg.starts_with("--ops=")) {
      ops = arg_value(arg, ops);
    } else if (arg.starts_with("--seed=")) {
      seed = arg_value(arg, seed);
    } else if (arg.starts_with("--dir=")) {
      dir = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
      sessions = 4;
      ops = 30;
    } else {
      std::cerr << "usage: fem2_serve [--sessions=K] [--ops=N] [--dir=PATH]"
                   " [--seed=S] [--smoke]\n";
      return 2;
    }
  }

  // Smoke mode gets a throwaway persistent directory so the WAL, group
  // commit, the checkpointer and recovery all run (sanitized in CI).
  std::filesystem::path smoke_dir;
  if (smoke && dir.empty()) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "fem2_serve_XXXXXX")
            .string();
    if (!::mkdtemp(tmpl.data())) {
      std::cerr << "cannot create smoke directory\n";
      return 1;
    }
    smoke_dir = tmpl;
    dir = tmpl;
  }

  bool ok = true;
  {
    fem2::db::EngineOptions eopts;
    eopts.directory = dir;
    if (!dir.empty()) {
      // One fsync per commit window, not per commit — the server's whole
      // reason for batching concurrent sessions.
      eopts.group_commit_window = std::chrono::microseconds(200);
    }
    auto engine = std::make_shared<fem2::db::Engine>(eopts);
    std::cout << "fem2_serve: " << sessions << " sessions x " << ops
              << " ops via server on "
              << (dir.empty() ? "an in-memory" : "a persistent")
              << " database\n";
    const RunReport report = run_clients(engine, sessions, ops, seed);

    fem2::support::Table table("multi-tenant server workload");
    table.set_header({"sessions", "ops", "stores", "txns", "conflicts",
                      "batches", "max-batch", "errors", "ms", "commits/s"});
    const auto& t = report.totals;
    const double commits_per_s =
        report.elapsed_ms > 0.0
            ? 1000.0 * static_cast<double>(t.stores + t.txns) /
                  report.elapsed_ms
            : 0.0;
    table.row()
        .cell(static_cast<std::uint64_t>(sessions))
        .cell(static_cast<std::uint64_t>(ops))
        .cell(t.stores)
        .cell(t.txns)
        .cell(report.engine.conflicts)
        .cell(report.engine.group_batches)
        .cell(report.engine.group_max_batch)
        .cell(t.errors)
        .cell(report.elapsed_ms, 1)
        .cell(commits_per_s, 0);
    table.print(std::cout);
    std::cout << "server: " << report.server.workers << " workers, "
              << report.server.submitted << " submitted, "
              << report.server.executed << " executed, peak queue "
              << report.server.peak_queue_depth << "\n";
    ok = report.consistent && t.errors == 0 &&
         report.server.submitted == report.server.executed;

    if (!dir.empty()) {
      // Recovery check: a fresh engine over the same directory must see
      // exactly the acked state the server reported.
      Database db(engine);
      const auto before = db.list();
      Database reopened(dir);
      bool recovery_ok = true;
      for (const auto& entry : before) {
        if (reopened.revision(entry.name) != entry.revision) {
          std::cerr << "RECOVERY MISMATCH on '" << entry.name << "'\n";
          recovery_ok = false;
        }
      }
      std::cout << "recovery check: " << before.size()
                << " entries reopened from disk"
                << (recovery_ok ? "" : " — MISMATCH") << "\n";
      ok = ok && recovery_ok;
    }
  }

  if (!smoke_dir.empty()) std::filesystem::remove_all(smoke_dir);
  std::cout << (ok ? "fem2_serve: ok\n" : "fem2_serve: FAILED\n");
  return ok ? 0 : 1;
}
