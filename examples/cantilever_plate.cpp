// Cantilever plate on the simulated FEM-2 machine.
//
// Solves the same plane-stress cantilever twice: sequentially on the host,
// and distributed across the simulated clusters with the numerical
// analyst's VM (tasks + windows + collectors).  Prints the machine's
// processing/storage/communication metrics — the quantities the paper's
// simulation program was designed to measure.
#include <iostream>

#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "navm/parops.hpp"
#include "support/strings.hpp"

using namespace fem2;

int main() {
  fem::PlateMeshOptions mesh;
  mesh.nx = 24;
  mesh.ny = 8;
  mesh.width = 3.0;
  mesh.height = 1.0;
  mesh.material.youngs_modulus = 70e9;  // aluminium
  mesh.material.thickness = 0.005;
  const auto model = fem::make_cantilever_plate(mesh, 2'000.0);

  const std::size_t tip = fem::plate_node(mesh, mesh.nx, mesh.ny / 2);

  // --- sequential reference ------------------------------------------------
  const auto sequential = fem::solve_static(
      model, "tip-shear", {.kind = fem::SolverKind::ConjugateGradient});
  std::cout << "sequential  " << sequential.stats.method << ": tip deflection "
            << sequential.displacements.at(tip, 1) << " m in "
            << sequential.stats.iterations << " iterations\n";

  // --- distributed on the simulated FEM-2 ----------------------------------
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 4;
  hw::Machine machine(config);
  hw::Tracer tracer;
  machine.set_tracer(&tracer);
  sysvm::Os os(machine);
  navm::Runtime runtime(os);
  navm::register_parallel_ops(runtime);

  const auto parallel = fem::solve_static_parallel(
      model, "tip-shear", runtime, {.workers = 8, .tolerance = 1e-10});
  std::cout << "distributed " << parallel.stats.method << ": tip deflection "
            << parallel.displacements.at(tip, 1) << " m in "
            << parallel.stats.iterations << " iterations\n\n";

  const double delta = std::abs(parallel.displacements.at(tip, 1) -
                                sequential.displacements.at(tip, 1));
  std::cout << "agreement: |delta| = " << delta << "\n\n";

  std::cout << "FEM-2 machine (" << config.clusters << " clusters x "
            << config.pes_per_cluster << " PEs):\n  "
            << machine.metrics().summary(machine.now()) << "\n";
  const auto& osm = os.metrics();
  std::cout << "  tasks " << osm.tasks_initiated << ", kernel dispatches "
            << osm.kernel_dispatches << ", steps " << osm.steps_executed
            << "\n  messages by type:\n";
  for (std::size_t t = 0; t < sysvm::kMessageTypeCount; ++t) {
    if (osm.messages_sent[t] == 0) continue;
    std::cout << "    "
              << sysvm::message_type_name(static_cast<sysvm::MessageType>(t))
              << ": " << osm.messages_sent[t] << " ("
              << support::format_bytes(osm.message_bytes_sent[t]) << ")\n";
  }

  // Timeline view: the first stretch of the solve, PE by PE.
  const hw::Cycles window = std::min<hw::Cycles>(machine.now(), 600'000);
  std::cout << "\n" << tracer.render_pe_gantt(config, 0, window, 64)
            << tracer.render_message_profile(0, window, 64);
  return delta < 1e-6 ? 0 : 1;
}
