// Substructure analysis — the paper's second level of parallelism
// ("parallelism in the substructure analysis of a larger structure").
//
// A long panel is split into vertical bands; each band condenses its
// interior onto the interface in its own FEM-2 task, the driver solves the
// interface system, and interiors are recovered in parallel.  The result is
// compared against the monolithic direct solve.
#include <iostream>

#include "fem/mesh.hpp"
#include "fem/substructure.hpp"
#include "support/strings.hpp"

using namespace fem2;

int main() {
  fem::PlateMeshOptions mesh;
  mesh.nx = 32;
  mesh.ny = 6;
  mesh.width = 8.0;
  mesh.height = 1.5;
  mesh.material.youngs_modulus = 200e9;
  mesh.material.thickness = 0.008;
  const auto model = fem::make_cantilever_plate(mesh, 10'000.0);
  const std::size_t tip = fem::plate_node(mesh, mesh.nx, mesh.ny / 2);

  const auto direct = fem::solve_static(
      model, "tip-shear", {.kind = fem::SolverKind::SkylineDirect});
  std::cout << "monolithic " << direct.stats.method << ": tip "
            << direct.displacements.at(tip, 1) << " m\n";

  const auto partition = fem::partition_by_x(model, 4);

  // Sequential condensation (reference).
  fem::SubstructureStats seq_stats;
  const auto sequential =
      fem::solve_substructured(model, "tip-shear", partition, &seq_stats);
  std::cout << "sequential condensation: tip "
            << sequential.displacements.at(tip, 1) << " m ("
            << seq_stats.substructures << " substructures, "
            << seq_stats.interface_dofs << " interface dofs, residual "
            << seq_stats.residual << ")\n";

  // Parallel condensation on the simulated machine.
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 2;
  config.memory_per_cluster = 64u << 20;
  hw::Machine machine(config);
  sysvm::Os os(machine);
  navm::Runtime runtime(os);
  fem::register_substructure_tasks(runtime);

  fem::SubstructureStats par_stats;
  const auto parallel = fem::solve_substructured_parallel(
      model, "tip-shear", partition, runtime, &par_stats);
  std::cout << "FEM-2 condensation:      tip "
            << parallel.displacements.at(tip, 1) << " m (residual "
            << par_stats.residual << ")\n\n";

  std::cout << "machine: " << machine.metrics().summary(machine.now())
            << "\n";
  std::cout << "condensations ran as " << os.metrics().tasks_initiated - 1
            << " worker tasks; interface solved in the driver task\n";

  const double delta = std::abs(parallel.displacements.at(tip, 1) -
                                direct.displacements.at(tip, 1));
  return delta < 1e-8 + std::abs(direct.displacements.at(tip, 1)) * 1e-5 ? 0
                                                                         : 1;
}
