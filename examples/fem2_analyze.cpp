// fem2_analyze — static + dynamic analysis CLI over the FEM-2 stack.
//
//   fem2_analyze --lint-grammars            lint the five built-in layer
//                                           grammars (exit 1 on any finding;
//                                           registered as a tier-1 test)
//   fem2_analyze --lint-file FILE           parse + lint a grammar file
//   fem2_analyze --check [--stride N]       run an instrumented distributed
//                                           solve with conformance, race and
//                                           deadlock detection (exit 1 on
//                                           any error-severity finding)
//   fem2_analyze --verify [--bound N]       static spec verification: grammar
//                                           language algorithms + refinement,
//                                           rule type preservation, bounded
//                                           protocol model checking (exit 1
//                                           on any finding)
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analyze/analyzer.hpp"
#include "analyze/verify.hpp"
#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hgraph/grammar_parser.hpp"
#include "navm/parops.hpp"

using namespace fem2;

namespace {

int report(const std::vector<analyze::Finding>& findings,
           analyze::Severity fail_at) {
  for (const auto& f : findings) std::cout << f.to_string() << "\n";
  const std::size_t failures = analyze::count_at_least(findings, fail_at);
  if (failures == 0) {
    std::cout << "OK: no findings at or above "
              << analyze::severity_name(fail_at) << " ("
              << findings.size() << " total)\n";
    return 0;
  }
  std::cout << "FAIL: " << failures << " finding(s) at or above "
            << analyze::severity_name(fail_at) << "\n";
  return 1;
}

int lint_grammars() {
  std::cout << "linting built-in layer grammars (appvm, db, navm, sysvm, hw)\n";
  return report(analyze::Analyzer::lint_layer_grammars(),
                analyze::Severity::Info);
}

int lint_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fem2_analyze: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  hgraph::Grammar grammar;
  try {
    grammar = hgraph::parse_grammar(text.str());
  } catch (const hgraph::GrammarParseError& e) {
    std::cout << "error [lint/-] parse-error (" << path << "): " << e.what()
              << "\n";
    return 1;
  }
  return report(analyze::lint_grammar(grammar, path),
                analyze::Severity::Info);
}

int check(std::size_t stride) {
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 4;
  hw::Machine machine(config);
  sysvm::Os os(machine);
  navm::Runtime runtime(os);
  navm::register_parallel_ops(runtime);

  analyze::AnalyzerOptions options;
  options.snapshot_stride = stride;
  analyze::Analyzer analyzer(runtime, options);

  std::cout << "running instrumented distributed solve (cantilever plate, "
            << config.clusters << " clusters, stride " << stride << ")\n";
  const auto model = fem::make_cantilever_plate({.nx = 16, .ny = 6}, 1'000.0);
  const auto result = fem::solve_static_parallel(model, "tip-shear", runtime,
                                                 {.workers = 8});
  analyzer.check_now();

  const auto stats = analyzer.stats();
  std::cout << "solve: " << result.stats.iterations << " iterations\n"
            << "observed: " << stats.steps_observed << " task steps, "
            << stats.accesses_tracked << " window accesses, "
            << stats.quiescent_points << " quiescent points\n"
            << "checked: " << stats.snapshots << " snapshots ("
            << stats.graphs_checked << " graphs), " << stats.messages_checked
            << " messages\n";
  return report(analyzer.findings(), analyze::Severity::Error);
}

int verify(std::size_t bound) {
  analyze::VerifyOptions options;
  if (bound != 0) {
    options.messaging.max_states = bound;
    options.db_health.max_states = bound;
  }
  std::cout << "verifying specs: grammar languages + refinement, rule type "
               "preservation, protocol model checking\n";
  const auto report_out = analyze::verify_specs(options);
  const auto& s = report_out.stats;
  std::cout << "grammars: " << s.grammars << " checked, " << s.nonterminals
            << " nonterminals, " << s.witnesses << " witnesses, "
            << s.refinement_pairs << " refinement pairs\n"
            << "rules: " << s.rules << " transforms, " << s.paths
            << " abstract paths\n";
  const auto protocol_line = [](const char* name,
                                const analyze::ModelCheckResult& r) {
    std::cout << name << ": " << r.states << " states, " << r.transitions
              << " transitions, depth " << r.depth
              << (r.bounded_out ? " (bounded out)" : " (exhausted)") << "\n";
  };
  protocol_line("messaging protocol", report_out.messaging);
  protocol_line("db health protocol", report_out.db_health);
  return report(report_out.findings, analyze::Severity::Info);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t stride = 64;
  std::size_t bound = 0;
  const char* mode = "--check";
  const char* file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lint-grammars") == 0 ||
        std::strcmp(argv[i], "--check") == 0 ||
        std::strcmp(argv[i], "--verify") == 0) {
      mode = argv[i];
    } else if (std::strcmp(argv[i], "--lint-file") == 0 && i + 1 < argc) {
      mode = argv[i];
      file = argv[++i];
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      stride = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--bound") == 0 && i + 1 < argc) {
      bound = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: fem2_analyze [--lint-grammars | --lint-file FILE |"
                   " --check [--stride N] | --verify [--bound N]]\n";
      return 2;
    }
  }
  if (std::strcmp(mode, "--lint-grammars") == 0) return lint_grammars();
  if (std::strcmp(mode, "--lint-file") == 0) return lint_file(file);
  if (std::strcmp(mode, "--verify") == 0) return verify(bound);
  return check(stride);
}
