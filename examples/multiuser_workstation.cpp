// Multi-user workstation: two engineers share the FEM-2 database.
//
// "Provide multi-user access" is one of the architecture requirements, and
// user-request-level parallelism is the first of the paper's three levels.
// Here two sessions work over one shared database: one designs a truss, the
// other a frame; each retrieves and checks the other's model.
#include <cstdint>
#include <iostream>
#include <string>

#include "appvm/command.hpp"

using fem2::appvm::Database;
using fem2::appvm::Session;

namespace {

bool run(Session& session, const char* who, const char* line) {
  const auto response = session.execute(line);
  if (!response.text.empty())
    std::cout << who << (response.ok ? "  " : "! ") << response.text << "\n";
  return response.ok;
}

}  // namespace

int main() {
  Database shared;
  Session alice(shared, "alice");
  Session bob(shared, "bob");

  // Alice designs a truss bridge.
  for (const char* line :
       {"mesh truss bays=8 load=5000", "solve deck using skyline", "stresses",
        "store bridge", "store results bridge-results"}) {
    if (!run(alice, "[alice]", line)) return 1;
  }

  // Bob designs a frame, in parallel conceptually — independent problems
  // are the outermost level of FEM-2 parallelism.
  for (const char* line :
       {"mesh beam segments=12 length=6 load=750", "solve tip using cg",
        "store jib-boom"}) {
    if (!run(bob, "[bob]  ", line)) return 1;
  }

  std::cout << "\n-- database now shared by both sessions --\n";
  if (!run(alice, "[alice]", "list")) return 1;

  // Cross-review: each retrieves the other's model and re-analyzes it.
  std::cout << "\n-- cross review --\n";
  for (const char* line :
       {"retrieve jib-boom", "solve tip using skyline", "show peak"}) {
    if (!run(alice, "[alice]", line)) return 1;
  }
  for (const char* line :
       {"retrieve bridge", "solve deck using pcg", "show displacements"}) {
    if (!run(bob, "[bob]  ", line)) return 1;
  }

  // Conflict detection: both engineers revise the bridge concurrently.
  // Each read it at the same revision; the first optimistic store wins,
  // the second is rejected, retrieves the fresh copy and retries.
  std::cout << "\n-- optimistic concurrency on 'bridge' --\n";
  const std::uint64_t rev = shared.revision("bridge");
  const std::string if_rev = " if-rev=" + std::to_string(rev);
  if (!run(alice, "[alice]", "retrieve bridge")) return 1;
  if (!run(alice, "[alice]", "load deck 2 1 -250")) return 1;
  if (!run(alice, "[alice]", ("store bridge" + if_rev).c_str())) return 1;
  if (!run(bob, "[bob]  ", "load deck 3 1 -99")) return 1;
  // Bob still holds the old revision — this store must be refused.
  if (run(bob, "[bob]  ", ("store bridge" + if_rev).c_str())) {
    std::cerr << "expected a revision conflict for bob\n";
    return 1;
  }
  // Retry protocol: re-read, re-apply the change, store against the
  // revision actually seen.
  const std::string retry =
      "store bridge if-rev=" + std::to_string(shared.revision("bridge"));
  for (const char* line : {"retrieve bridge", "load deck 3 1 -99"}) {
    if (!run(bob, "[bob]  ", line)) return 1;
  }
  if (!run(bob, "[bob]  ", retry.c_str())) return 1;
  if (!run(alice, "[alice]", "history bridge")) return 1;
  return 0;
}
