// fem2_shell — the FEM-2 interactive workstation, literally.
//
// "The FEM-2 user would typically be a structural engineer using the system
// as an interactive workstation" — this is that terminal: a REPL over the
// application user's VM.  Run it and type `help`, or pipe a script:
//
//   echo 'mesh plate nx=8 ny=4 load=100
//         solve tip-shear
//         stresses' | ./build/examples/fem2_shell
#include <unistd.h>

#include <iostream>
#include <string>

#include "appvm/command.hpp"
#include "support/strings.hpp"

int main() {
  fem2::appvm::Database database;
  fem2::appvm::Session session(database);
  const bool interactive = static_cast<bool>(isatty(0));

  if (interactive) {
    std::cout << "FEM-2 workstation — type 'help' for commands, 'quit' to "
                 "leave.\n";
  }

  std::string line;
  while (true) {
    if (interactive) std::cout << "fem2> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    const auto trimmed = std::string(fem2::support::trim(line));
    if (trimmed == "quit" || trimmed == "exit") break;
    const auto response = session.execute(line);
    if (!response.text.empty())
      std::cout << (response.ok ? "" : "error: ") << response.text << "\n";
  }
  return 0;
}
