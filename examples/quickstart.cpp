// Quickstart: the application user's virtual machine.
//
// A structural engineer's interactive session: generate a grid, solve a
// load set, recover stresses, and file the model in the shared database —
// exactly the workflow the FEM-2 paper's top layer is designed around.
#include <iostream>

#include "appvm/command.hpp"

int main() {
  fem2::appvm::Database database;
  fem2::appvm::Session session(database, "engineer");

  const char* script = R"(
# Build and analyze a cantilever plate.
mesh plate nx=16 ny=8 width=2 height=1 E=200e9 t=0.01 load=1000
show model
solve tip-shear using cg tol=1e-10
show displacements
stresses
show peak

# File the model and the results in the shared database.
store wing-panel
store results wing-panel-results
list
)";

  for (const auto& response : session.execute_script(script)) {
    if (!response.text.empty())
      std::cout << (response.ok ? "  " : "! ") << response.text << "\n";
    if (!response.ok) return 1;
  }

  // A second look: retrieve the stored model and re-solve with the classic
  // direct solver.
  std::cout << "\n-- second pass from the database --\n";
  for (const char* line : {"retrieve wing-panel",
                           "solve tip-shear using skyline",
                           "show displacements"}) {
    const auto response = session.execute(line);
    std::cout << (response.ok ? "  " : "! ") << response.text << "\n";
    if (!response.ok) return 1;
  }
  return 0;
}
