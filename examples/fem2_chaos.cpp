// fem2_chaos: a combined-chaos soak driver.  Each round runs the full
// stack twice over:
//
//   * compute layer — a parallel FEM solve on the simulated machine with
//     an armed hw::FaultPlan (lossy network under reliable transport);
//     the answer must still match the serial reference bit-for-bit in
//     physics terms (relative tolerance of the parallel solver), and
//
//   * storage layer — the solve's results are committed to a fem2-db
//     engine mounted on a FaultVfs with a seeded IoFaultPlan (failed
//     fsyncs, failed writes, or lying fsyncs), then the process "loses
//     power" (crash_to_durable) and a fresh engine recovers.
//
// The invariant checked after EVERY round: the recovered store holds
// exactly the acknowledged commits (for honest-failure flavors), or a
// clean prefix of them (for lying-fsync flavors, where an acked commit
// may vanish whole — but never tear, and never resurrect an unacked
// one).  Degraded mode must be sticky until recover(), and recover()
// must restore a writable engine over the committed state.
//
// usage: fem2_chaos [--rounds=N] [--seed=S] [--smoke]
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "db/engine.hpp"
#include "db/iofault.hpp"
#include "fem/mesh.hpp"
#include "fem/passembly.hpp"
#include "fem/solver.hpp"
#include "hw/fault.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "sysvm/os.hpp"

namespace {

using namespace fem2;

enum class Flavor { FsyncFail, WriteFail, LyingFsync };

const char* flavor_name(Flavor flavor) {
  switch (flavor) {
    case Flavor::FsyncFail:
      return "fsync-fail";
    case Flavor::WriteFail:
      return "write-fail";
    case Flavor::LyingFsync:
      return "lying-fsync";
  }
  return "?";
}

struct AckedObject {
  std::string value;
  std::uint64_t revision = 0;
  bool operator==(const AckedObject&) const = default;
};

// Every acknowledged (name, revision, value) triple, so lying-fsync
// rounds can check the recovered store is a clean prefix.
struct AckedLog {
  std::map<std::string, AckedObject> live;
  std::map<std::string, std::vector<AckedObject>> per_name;

  void record(const std::string& name, std::string value,
              std::uint64_t revision) {
    live[name] = {value, revision};
    per_name[name].push_back({std::move(value), revision});
  }
};

struct SolveOutcome {
  double tip = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmissions = 0;
};

struct FlavorTotals {
  std::uint64_t rounds = 0;
  std::uint64_t acked = 0;
  std::uint64_t io_faults = 0;
  std::uint64_t degraded_rounds = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t hw_dropped = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failures = 0;
};

hw::MachineConfig machine_config() {
  hw::MachineConfig config;
  config.clusters = 4;
  config.pes_per_cluster = 4;
  config.memory_per_cluster = 64u << 20;
  return config;
}

/// One parallel solve on a machine whose network the fault plan makes
/// lossy mid-run.  Reliable transport has to absorb the chaos.
SolveOutcome chaos_solve(const fem::StructureModel& model, double drop_p) {
  hw::Machine machine(machine_config());
  sysvm::OsOptions os_options;
  os_options.reliable_transport = true;
  sysvm::Os os(machine, os_options);
  navm::Runtime runtime(os);
  navm::register_parallel_ops(runtime);
  fem::register_assembly_tasks(runtime);
  fem::register_stress_tasks(runtime);

  hw::FaultPlan plan;
  plan.set_drop_probability(1, drop_p);
  hw::FaultInjector injector(machine, std::move(plan));
  injector.arm();

  const auto solution = fem::solve_static_parallel(
      model, "tip-shear", runtime, {.workers = 8, .tolerance = 1e-11});
  SolveOutcome out;
  out.tip = solution.displacements.values.back();
  out.dropped = machine.metrics().network.dropped_messages;
  out.retransmissions = os.stats().retransmissions;
  return out;
}

db::IoFaultPlan make_plan(Flavor flavor, support::Rng& rng) {
  db::IoFaultPlan plan;
  switch (flavor) {
    case Flavor::FsyncFail:
      return db::IoFaultPlan::random_fsync_failures(3, 24, rng.next());
    case Flavor::WriteFail:
      for (int i = 0; i < 3; ++i)
        plan.fail(db::IoOp::Write, rng.next_below(60), EIO);
      return plan;
    case Flavor::LyingFsync:
      for (int i = 0; i < 2; ++i) plan.lying_fsync(rng.next_below(24));
      return plan;
  }
  return plan;
}

std::map<std::string, AckedObject> live_state(const db::Engine& engine) {
  std::map<std::string, AckedObject> out;
  for (const auto& entry : engine.list()) {
    const auto view = engine.get(entry.name);
    if (view) out[entry.name] = {view->value, view->revision};
  }
  return out;
}

bool check(bool condition, const std::string& what, std::uint64_t round) {
  if (!condition)
    std::cerr << "FAIL round " << round << ": " << what << "\n";
  return condition;
}

/// One storage-chaos round: commit solve results through a FaultVfs,
/// crash to the durable image, recover, and verify the invariant.
bool chaos_commit_round(const std::filesystem::path& root, Flavor flavor,
                        std::uint64_t round, std::uint64_t seed,
                        double solved_tip, FlavorTotals& totals) {
  const auto dir = root / ("round_" + std::to_string(round));
  std::filesystem::create_directories(dir);
  support::Rng rng(seed);
  auto vfs = std::make_shared<db::FaultVfs>(make_plan(flavor, rng));

  db::EngineOptions options;
  options.directory = dir.string();
  // Honest-failure flavors keep the checkpointer in the blast radius; a
  // lying fsync under a snapshot publish is a torn-snapshot scenario the
  // engine does not claim to survive, so those rounds stay WAL-only.
  options.compact_after_bytes = flavor == Flavor::LyingFsync ? 0 : 2048;
  options.vfs = vfs;

  AckedLog acked;
  bool ok = true;
  {
    db::Engine engine(options);
    for (int i = 0; i < 20; ++i) {
      const std::string name = "probe-" + std::to_string(i % 5);
      const std::string value = "tip=" + std::to_string(solved_tip) +
                                " step=" + std::to_string(i) + " pad=" +
                                std::string(96 + rng.next_below(64), 'x');
      try {
        const auto revision = engine.put(name, "results", value);
        acked.record(name, value, revision);
        totals.acked += 1;
      } catch (const db::Error&) {
        // Not acknowledged: this commit must leave no durable trace.
      }
    }
    if (engine.degraded()) {
      totals.degraded_rounds += 1;
      // Sticky until recover(), reads served throughout.
      vfs->set_plan({});
      bool sticky = false;
      try {
        engine.put("probe-0", "results", "refused");
      } catch (const db::DegradedError&) {
        sticky = true;
      }
      ok = check(sticky, "degraded mode was not sticky", round) && ok;
      ok = check(live_state(engine) == acked.live,
                 "degraded reads diverged from acked state", round) &&
           ok;
      engine.recover();
      totals.recoveries += 1;
      ok = check(!engine.degraded(), "recover() left the engine degraded",
                 round) &&
           ok;
      ok = check(live_state(engine) == acked.live,
                 "recover() lost or invented commits", round) &&
           ok;
      const auto revision = engine.put("post-recover", "results", "alive");
      acked.record("post-recover", "alive", revision);
      totals.acked += 1;
    }
  }
  totals.io_faults += vfs->faults_fired();

  // Power loss: only the durable image survives.
  vfs->crash_to_durable();
  db::EngineOptions reopened_options;
  reopened_options.directory = dir.string();
  db::Engine reopened(reopened_options);
  const auto recovered = live_state(reopened);

  if (flavor == Flavor::LyingFsync) {
    // Weaker (and honest) guarantee: a lied-about commit may vanish
    // whole, but the store is a clean prefix — every recovered object is
    // an acked (revision, value) pair and nothing unacked appears.
    for (const auto& [name, object] : recovered) {
      const auto it = acked.per_name.find(name);
      if (!check(it != acked.per_name.end(),
                 "recovered unacked object '" + name + "'", round))
        return false;
      bool matched = false;
      for (const auto& entry : it->second)
        matched = matched || (entry.revision == object.revision &&
                              entry.value == object.value);
      ok = check(matched,
                 "recovered '" + name + "' rev " +
                     std::to_string(object.revision) +
                     " is not an acked version",
                 round) &&
           ok;
      ok = check(object.revision <= acked.live[name].revision,
                 "recovered '" + name + "' is newer than the last ack",
                 round) &&
           ok;
    }
  } else {
    // Honest failures: recovery yields exactly the acked commits.
    ok = check(recovered == acked.live,
               "recovered store != acknowledged commits", round) &&
         ok;
  }
  std::filesystem::remove_all(dir);
  return ok;
}

std::uint64_t arg_value(const std::string& arg, std::uint64_t fallback) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return fallback;
  return std::strtoull(arg.c_str() + eq + 1, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t rounds = 12;
  std::uint64_t seed = 7;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--rounds=")) {
      rounds = arg_value(arg, rounds);
    } else if (arg.starts_with("--seed=")) {
      seed = arg_value(arg, seed);
    } else if (arg == "--smoke") {
      smoke = true;
      rounds = 3;
    } else {
      std::cerr << "usage: fem2_chaos [--rounds=N] [--seed=S] [--smoke]\n";
      return 2;
    }
  }

  std::string tmpl =
      (std::filesystem::temp_directory_path() / "fem2_chaos_XXXXXX").string();
  if (!::mkdtemp(tmpl.data())) {
    std::cerr << "cannot create working directory\n";
    return 1;
  }
  const std::filesystem::path root = tmpl;

  // Serial reference for the physics invariant.
  const auto model = smoke ? fem::make_cantilever_plate({.nx = 6, .ny = 2}, 40.0)
                           : fem::make_cantilever_plate({.nx = 10, .ny = 4}, 90.0);
  const auto reference = fem::solve_static(
      model, "tip-shear", {.kind = fem::SolverKind::SkylineDirect});
  const double want = reference.displacements.values.back();

  std::cout << "fem2_chaos: " << rounds
            << " rounds of combined machine + storage fault injection\n";

  std::map<Flavor, FlavorTotals> totals;
  bool ok = true;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const Flavor flavor = static_cast<Flavor>(round % 3);
    auto& t = totals[flavor];
    t.rounds += 1;

    // Compute-layer chaos: the solve must still be right.
    const double drop_p = 0.10 + 0.05 * static_cast<double>(round % 4);
    const auto solved = chaos_solve(model, drop_p);
    t.hw_dropped += solved.dropped;
    t.retransmissions += solved.retransmissions;
    const double tolerance = std::abs(want) * 1e-5 + 1e-12;
    if (!check(std::abs(solved.tip - want) <= tolerance,
               "chaos solve diverged from the serial reference", round)) {
      t.failures += 1;
      ok = false;
    }

    // Storage-layer chaos: commit, crash, recover, verify.
    if (!chaos_commit_round(root, flavor, round, seed * 1000003 + round,
                            solved.tip, t)) {
      t.failures += 1;
      ok = false;
    }
  }

  support::Table table("combined chaos soak");
  table.set_header({"flavor", "rounds", "acked", "io faults", "degraded",
                    "recoveries", "hw dropped", "retransmits", "failures"});
  for (const auto& [flavor, t] : totals) {
    table.row()
        .cell(flavor_name(flavor))
        .cell(t.rounds)
        .cell(t.acked)
        .cell(t.io_faults)
        .cell(t.degraded_rounds)
        .cell(t.recoveries)
        .cell(t.hw_dropped)
        .cell(t.retransmissions)
        .cell(t.failures);
  }
  table.print(std::cout);

  std::filesystem::remove_all(root);
  std::cout << (ok ? "fem2_chaos: ok\n" : "fem2_chaos: FAILED\n");
  return ok ? 0 : 1;
}
